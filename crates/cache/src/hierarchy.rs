//! The two-level coherent hierarchy: per-core L1s, shared L2, snoopy MESI.

use crate::set_assoc::{MesiState, SetAssocCache};
use hintm_types::{AccessKind, BlockAddr, CoreId, Cycles, MachineConfig};

/// The result of one memory access through the hierarchy.
#[derive(Clone, Debug, Default)]
pub struct AccessOutcome {
    /// Latency charged to the accessing core.
    pub latency: Cycles,
    /// The access hit in the local L1.
    pub l1_hit: bool,
    /// The block was found in the L2 (only meaningful on an L1 miss).
    pub l2_hit: bool,
    /// Remote cores whose L1 copy was invalidated (the access was a write,
    /// or an upgrade). Eager HTM conflict detection keys off this.
    pub invalidated: Vec<CoreId>,
    /// Remote cores downgraded M→S (the access was a read of dirty data).
    pub downgraded: Vec<CoreId>,
    /// Block evicted from the local L1 to make room, if any.
    pub l1_victim: Option<BlockAddr>,
}

impl AccessOutcome {
    /// Resets to the post-`default()` state, keeping the vectors' storage
    /// so a reused outcome allocates nothing in steady state.
    pub fn reset(&mut self) {
        self.latency = Cycles::ZERO;
        self.l1_hit = false;
        self.l2_hit = false;
        self.invalidated.clear();
        self.downgraded.clear();
        self.l1_victim = None;
    }
}

/// Aggregate hit/miss statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (on L1 miss).
    pub l2_hits: u64,
    /// Cache-to-cache transfers (dirty peer supplied the block).
    pub peer_transfers: u64,
    /// Memory fetches.
    pub mem_fetches: u64,
    /// Write upgrades (S→M with remote invalidations).
    pub upgrades: u64,
}

/// Memo of a core's most recent access: the block is resident in that L1
/// as the most-recently-touched line of its set, in Modified state when
/// `modified` holds. Cleared whenever any remote action mutates that
/// core's L1; overwritten by the core's next access.
#[derive(Clone, Copy, Debug)]
struct BlockMemo {
    block: BlockAddr,
    modified: bool,
}

/// Which cores hold a block, and how. MESI invariants keep the masks
/// consistent: at most one `dirty` bit, `dirty ⊆ excl ⊆ valid`, and an
/// exclusive holder is the sole valid one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Sharers {
    /// Cores holding the block in any valid state.
    valid: u64,
    /// Cores holding it Exclusive or Modified.
    excl: u64,
    /// The core holding it Modified, if any.
    dirty: u64,
}

/// An exact sharer directory: open-addressed map from block index to
/// [`Sharers`], mirroring the per-L1 MESI states. Replaces the miss path's
/// all-core snoop (`cores × ways` tag compares per miss) and lets
/// invalidations visit only actual holders. Same table design as the HTM
/// crate's `BlockSet`: power-of-two slots, Fibonacci multiplicative hash,
/// linear probing, backward-shift deletion.
#[derive(Clone, Debug)]
struct BlockDir {
    keys: Vec<u64>,
    vals: Vec<Sharers>,
    live: Vec<bool>,
    mask: usize,
    shift: u32,
    len: usize,
}

/// Multiplier for the Fibonacci-style multiplicative hash (2⁶⁴/φ).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

impl BlockDir {
    fn new() -> Self {
        Self::with_slots(1024)
    }

    fn with_slots(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two());
        BlockDir {
            keys: vec![0; slots],
            vals: vec![Sharers::default(); slots],
            live: vec![false; slots],
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    #[inline]
    fn probe(&self, key: u64) -> (usize, bool) {
        let mut i = self.home(key);
        loop {
            if !self.live[i] {
                return (i, false);
            }
            if self.keys[i] == key {
                return (i, true);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The sharer set of `block` (empty if untracked).
    #[inline]
    fn get(&self, block: BlockAddr) -> Sharers {
        let (i, hit) = self.probe(block.index());
        if hit {
            self.vals[i]
        } else {
            Sharers::default()
        }
    }

    /// Applies `f` to `block`'s sharer set, inserting or removing the
    /// entry as the result becomes non-empty or empty.
    fn update(&mut self, block: BlockAddr, f: impl FnOnce(&mut Sharers)) {
        let key = block.index();
        let (i, hit) = self.probe(key);
        if hit {
            f(&mut self.vals[i]);
            debug_assert_eq!(self.vals[i].excl & !self.vals[i].valid, 0);
            debug_assert_eq!(self.vals[i].dirty & !self.vals[i].excl, 0);
            if self.vals[i].valid == 0 {
                self.remove_at(i);
            }
            return;
        }
        let mut s = Sharers::default();
        f(&mut s);
        if s.valid == 0 {
            return;
        }
        if (self.len + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
        }
        let (i, _) = self.probe(key);
        self.keys[i] = key;
        self.vals[i] = s;
        self.live[i] = true;
        self.len += 1;
    }

    fn grow(&mut self) {
        let mut bigger = Self::with_slots((self.mask + 1) * 2);
        for i in 0..=self.mask {
            if self.live[i] {
                let (j, _) = bigger.probe(self.keys[i]);
                bigger.keys[j] = self.keys[i];
                bigger.vals[j] = self.vals[i];
                bigger.live[j] = true;
                bigger.len += 1;
            }
        }
        *self = bigger;
    }

    /// Backward-shift deletion at slot `hole`, keeping probe chains gapless.
    fn remove_at(&mut self, mut hole: usize) {
        self.live[hole] = false;
        self.len -= 1;
        let mut j = (hole + 1) & self.mask;
        while self.live[j] {
            let home = self.home(self.keys[j]);
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(hole) & self.mask) {
                self.keys[hole] = self.keys[j];
                self.vals[hole] = self.vals[j];
                self.live[hole] = true;
                self.live[j] = false;
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
    }
}

/// A coherent two-level cache hierarchy (Table II).
///
/// See the crate docs for an example.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1s: Vec<SetAssocCache>,
    l2: SetAssocCache,
    l1_latency: Cycles,
    l2_latency: Cycles,
    mem_latency: Cycles,
    stats: CacheStats,
    /// Per-core repeated-access fast path (see [`BlockMemo`]).
    memos: Vec<Option<BlockMemo>>,
    /// Exact sharer directory over all L1s (see [`BlockDir`]).
    dir: BlockDir,
}

impl Hierarchy {
    /// Builds the hierarchy for the given machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_cores` exceeds 64 (the directory's mask width).
    pub fn new(cfg: &MachineConfig) -> Self {
        assert!(cfg.num_cores <= 64, "sharer masks cover 64 cores");
        Hierarchy {
            l1s: (0..cfg.num_cores)
                .map(|_| SetAssocCache::new(cfg.l1_bytes, cfg.l1_ways))
                .collect(),
            l2: SetAssocCache::new(cfg.l2_bytes, cfg.l2_ways),
            l1_latency: cfg.l1_latency,
            l2_latency: cfg.l2_latency,
            mem_latency: cfg.mem_latency,
            stats: CacheStats::default(),
            memos: vec![None; cfg.num_cores],
            dir: BlockDir::new(),
        }
    }

    /// Number of cores (L1 caches).
    pub fn num_cores(&self) -> usize {
        self.l1s.len()
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The MESI state of `block` in `core`'s L1 (test/inspection hook).
    pub fn l1_state(&self, core: CoreId, block: BlockAddr) -> MesiState {
        self.l1s[core.index()].state_of(block)
    }

    /// Performs a load or store by `core` to `block`, applying all MESI
    /// transitions, and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: CoreId, block: BlockAddr, kind: AccessKind) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        self.access_into(core, block, kind, &mut out);
        out
    }

    /// [`Hierarchy::access`] writing into a caller-owned outcome. The
    /// engine keeps one `AccessOutcome` for its whole run and passes it
    /// here every access, so the hot path performs no allocation.
    pub fn access_into(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        out: &mut AccessOutcome,
    ) {
        out.reset();
        self.stats.accesses += 1;
        let ci = core.index();
        // Fast path: the core's immediately preceding access touched this
        // very block and no remote action has mutated this L1 since (any
        // such action clears the memo). The line is therefore resident —
        // a load hits in any valid state, a store hits silently only in
        // Modified — charging `l1_latency` and mutating nothing. Skipping
        // `touch_entry`'s LRU re-touch is unobservable: the line is
        // already its set's most-recently-touched, so relative order
        // (which alone picks victims) is unchanged.
        if let Some(m) = self.memos[ci] {
            if m.block == block && (kind == AccessKind::Load || m.modified) {
                self.stats.l1_hits += 1;
                out.l1_hit = true;
                out.latency = self.l1_latency;
                return;
            }
        }
        // One tag scan serves the whole hit path: the line index from
        // `touch_entry` lets the upgrade arms flip the state in place.
        let line = self.l1s[ci].touch_entry(block);
        let local_state = line.map_or(MesiState::Invalid, |i| self.l1s[ci].state_at(i));

        match (kind, local_state) {
            // L1 load hit in any valid state.
            (AccessKind::Load, s) if s.is_valid() => {
                self.stats.l1_hits += 1;
                out.l1_hit = true;
                out.latency = self.l1_latency;
            }
            // L1 store hit with ownership.
            (AccessKind::Store, MesiState::Modified) => {
                self.stats.l1_hits += 1;
                out.l1_hit = true;
                out.latency = self.l1_latency;
            }
            (AccessKind::Store, MesiState::Exclusive) => {
                self.stats.l1_hits += 1;
                out.l1_hit = true;
                out.latency = self.l1_latency;
                self.l1s[ci].set_state_at(line.unwrap(), MesiState::Modified);
                self.dir.update(block, |s| s.dirty |= 1 << ci);
            }
            // Store hit without ownership: upgrade, invalidating sharers.
            (AccessKind::Store, MesiState::Shared) => {
                self.stats.l1_hits += 1;
                self.stats.upgrades += 1;
                out.l1_hit = true;
                out.latency = self.l2_latency;
                self.invalidate_remote(core, block, out);
                self.l1s[ci].set_state_at(line.unwrap(), MesiState::Modified);
                self.dir.update(block, |s| {
                    s.excl |= 1 << ci;
                    s.dirty |= 1 << ci;
                });
            }
            // Miss paths.
            (AccessKind::Load, _) => {
                out.latency = self.miss_fill(core, block, AccessKind::Load, out);
            }
            (AccessKind::Store, _) => {
                out.latency = self.miss_fill(core, block, AccessKind::Store, out);
            }
        }
        // Every store path ends with the line Modified; a load leaves a
        // hit line's state alone and installs misses as Shared/Exclusive.
        self.memos[ci] = Some(BlockMemo {
            block,
            modified: kind == AccessKind::Store || local_state == MesiState::Modified,
        });
    }

    /// Handles an L1 miss: snoop peers, consult the L2, fetch from memory,
    /// and install the line locally. Returns the latency.
    fn miss_fill(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        out: &mut AccessOutcome,
    ) -> Cycles {
        let ci = core.index();
        // The directory mirrors peer L1 states exactly, so one probe
        // replaces the per-core snoop scan.
        let sh = self.dir.get(block);
        debug_assert_eq!(sh.valid & (1 << ci), 0, "miss with a valid local line");
        let dirty_peer: Option<usize> = if sh.dirty != 0 {
            Some(sh.dirty.trailing_zeros() as usize)
        } else {
            None
        };
        let sharers: u64 = sh.valid & !sh.dirty;

        let l2_entry = self.l2.find_entry(block);
        let l2_has = l2_entry.is_some();
        out.l2_hit = l2_has;

        let latency;
        let install_state;
        match kind {
            AccessKind::Load => {
                if let Some(p) = dirty_peer {
                    // Cache-to-cache transfer; writer downgrades to Shared.
                    self.stats.peer_transfers += 1;
                    self.l1s[p].set_state(block, MesiState::Shared);
                    self.clear_memo(p, block);
                    self.dir.update(block, |s| {
                        s.dirty &= !(1 << p);
                        s.excl &= !(1 << p);
                    });
                    out.downgraded.push(CoreId(p as u32));
                    // The writeback also populates the L2.
                    self.ensure_l2(block);
                    latency = self.l2_latency;
                    install_state = MesiState::Shared;
                } else if sharers != 0 {
                    self.stats.peer_transfers += 1;
                    // An Exclusive holder (necessarily the sole sharer)
                    // demotes to Shared.
                    let mut rest = sh.excl;
                    while rest != 0 {
                        let s = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        self.l1s[s].set_state(block, MesiState::Shared);
                        self.clear_memo(s, block);
                    }
                    if sh.excl != 0 {
                        self.dir.update(block, |s| s.excl = 0);
                    }
                    latency = self.l2_latency;
                    install_state = MesiState::Shared;
                } else if let Some(e) = l2_entry {
                    self.stats.l2_hits += 1;
                    self.l2.touch_at(e);
                    latency = self.l2_latency;
                    install_state = MesiState::Exclusive;
                } else {
                    self.stats.mem_fetches += 1;
                    self.ensure_l2(block);
                    latency = self.mem_latency;
                    install_state = MesiState::Exclusive;
                }
            }
            AccessKind::Store => {
                // Read-for-ownership: every peer copy dies.
                self.invalidate_remote(core, block, out);
                if dirty_peer.is_some() || sharers != 0 {
                    self.stats.peer_transfers += 1;
                    self.ensure_l2(block);
                    latency = self.l2_latency;
                } else if let Some(e) = l2_entry {
                    self.stats.l2_hits += 1;
                    self.l2.touch_at(e);
                    latency = self.l2_latency;
                } else {
                    self.stats.mem_fetches += 1;
                    self.ensure_l2(block);
                    latency = self.mem_latency;
                }
                install_state = MesiState::Modified;
            }
        }

        if let Some((victim, vstate)) = self.l1s[ci].install(block, install_state) {
            out.l1_victim = Some(victim);
            self.dir.update(victim, |s| {
                s.valid &= !(1 << ci);
                s.excl &= !(1 << ci);
                s.dirty &= !(1 << ci);
            });
            if vstate == MesiState::Modified {
                // Dirty writeback lands in the L2 (latency hidden).
                self.ensure_l2(victim);
            }
        }
        self.dir.update(block, |s| {
            s.valid |= 1 << ci;
            match install_state {
                MesiState::Modified => {
                    s.excl |= 1 << ci;
                    s.dirty |= 1 << ci;
                }
                MesiState::Exclusive => s.excl |= 1 << ci,
                MesiState::Shared | MesiState::Invalid => {}
            }
        });
        latency
    }

    /// Invalidates every remote L1 copy of `block`, recording the victims.
    /// Directory-guided: only actual holders are visited, in ascending
    /// core order (matching the order a full scan would report).
    fn invalidate_remote(&mut self, core: CoreId, block: BlockAddr, out: &mut AccessOutcome) {
        let me = 1u64 << core.index();
        let holders = self.dir.get(block);
        let mut rest = holders.valid & !me;
        if rest == 0 {
            return;
        }
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let prev = self.l1s[i].invalidate(block);
            debug_assert!(prev.is_valid(), "directory listed a non-holder");
            self.clear_memo(i, block);
            out.invalidated.push(CoreId(i as u32));
            if prev == MesiState::Modified {
                self.ensure_l2(block);
            }
        }
        self.dir.update(block, |s| {
            s.valid &= me;
            s.excl &= me;
            s.dirty &= me;
        });
    }

    /// Installs `block` in the L2 if absent (victim simply dropped: the L2
    /// is non-inclusive and clean victims need no action; dirty L2 victims
    /// write back to memory, whose latency we do not model separately).
    fn ensure_l2(&mut self, block: BlockAddr) {
        match self.l2.find_entry(block) {
            Some(i) => self.l2.touch_at(i),
            None => {
                let _ = self.l2.install(block, MesiState::Shared);
            }
        }
    }

    /// Drops `block` from `core`'s L1 without any coherence action
    /// (used by the HTM layer when rolling back speculatively written
    /// lines on abort).
    pub fn discard_local(&mut self, core: CoreId, block: BlockAddr) {
        let prev = self.l1s[core.index()].invalidate(block);
        if prev.is_valid() {
            let me = 1u64 << core.index();
            self.dir.update(block, |s| {
                s.valid &= !me;
                s.excl &= !me;
                s.dirty &= !me;
            });
        }
        self.clear_memo(core.index(), block);
    }

    /// Drops core `i`'s memo if it references `block` (the line is being
    /// mutated behind the memo's back).
    fn clear_memo(&mut self, i: usize, block: BlockAddr) {
        if self.memos[i].is_some_and(|m| m.block == block) {
            self.memos[i] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Hierarchy {
        Hierarchy::new(&MachineConfig::default())
    }

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn cold_load_misses_to_memory() {
        let mut h = mk();
        let out = h.access(CoreId(0), blk(10), AccessKind::Load);
        assert!(!out.l1_hit);
        assert!(!out.l2_hit);
        assert_eq!(out.latency, Cycles(100));
        assert_eq!(h.l1_state(CoreId(0), blk(10)), MesiState::Exclusive);
    }

    #[test]
    fn warm_load_hits_l1() {
        let mut h = mk();
        h.access(CoreId(0), blk(10), AccessKind::Load);
        let out = h.access(CoreId(0), blk(10), AccessKind::Load);
        assert!(out.l1_hit);
        assert_eq!(out.latency, Cycles(3));
    }

    #[test]
    fn store_after_exclusive_load_is_silent_upgrade() {
        let mut h = mk();
        h.access(CoreId(0), blk(10), AccessKind::Load);
        let out = h.access(CoreId(0), blk(10), AccessKind::Store);
        assert!(out.l1_hit);
        assert!(out.invalidated.is_empty());
        assert_eq!(h.l1_state(CoreId(0), blk(10)), MesiState::Modified);
    }

    #[test]
    fn read_shared_by_two_cores() {
        let mut h = mk();
        h.access(CoreId(0), blk(10), AccessKind::Load);
        let out = h.access(CoreId(1), blk(10), AccessKind::Load);
        assert_eq!(out.latency, Cycles(12), "peer transfer at L2 latency");
        assert_eq!(h.l1_state(CoreId(0), blk(10)), MesiState::Shared);
        assert_eq!(h.l1_state(CoreId(1), blk(10)), MesiState::Shared);
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut h = mk();
        h.access(CoreId(0), blk(10), AccessKind::Load);
        h.access(CoreId(1), blk(10), AccessKind::Load);
        let out = h.access(CoreId(2), blk(10), AccessKind::Store);
        let mut inv = out.invalidated.clone();
        inv.sort_by_key(|c| c.0);
        assert_eq!(inv, vec![CoreId(0), CoreId(1)]);
        assert_eq!(h.l1_state(CoreId(0), blk(10)), MesiState::Invalid);
        assert_eq!(h.l1_state(CoreId(2), blk(10)), MesiState::Modified);
    }

    #[test]
    fn read_of_dirty_line_downgrades_writer() {
        let mut h = mk();
        h.access(CoreId(0), blk(10), AccessKind::Store);
        assert_eq!(h.l1_state(CoreId(0), blk(10)), MesiState::Modified);
        let out = h.access(CoreId(1), blk(10), AccessKind::Load);
        assert_eq!(out.downgraded, vec![CoreId(0)]);
        assert_eq!(h.l1_state(CoreId(0), blk(10)), MesiState::Shared);
        assert_eq!(h.l1_state(CoreId(1), blk(10)), MesiState::Shared);
    }

    #[test]
    fn shared_store_upgrade_invalidates() {
        let mut h = mk();
        h.access(CoreId(0), blk(10), AccessKind::Load);
        h.access(CoreId(1), blk(10), AccessKind::Load);
        let out = h.access(CoreId(0), blk(10), AccessKind::Store);
        assert!(out.l1_hit);
        assert_eq!(out.invalidated, vec![CoreId(1)]);
        assert_eq!(h.l1_state(CoreId(0), blk(10)), MesiState::Modified);
        assert_eq!(h.stats().upgrades, 1);
    }

    #[test]
    fn l2_serves_after_l1_eviction() {
        let mut h = mk();
        // L1: 32 KiB 8-way = 64 sets. Blocks i*64 all map to set 0.
        for i in 0..9u64 {
            h.access(CoreId(0), blk(i * 64), AccessKind::Load);
        }
        // Block 0 was evicted from L1 but lives in L2 (fetched from memory).
        let out = h.access(CoreId(0), blk(0), AccessKind::Load);
        assert!(!out.l1_hit);
        assert!(out.l2_hit);
        assert_eq!(out.latency, Cycles(12));
    }

    #[test]
    fn eviction_reports_victim() {
        let mut h = mk();
        let mut victims = 0;
        for i in 0..9u64 {
            let out = h.access(CoreId(0), blk(i * 64), AccessKind::Load);
            if out.l1_victim.is_some() {
                victims += 1;
            }
        }
        assert_eq!(victims, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = mk();
        h.access(CoreId(0), blk(1), AccessKind::Load);
        h.access(CoreId(0), blk(1), AccessKind::Load);
        let s = h.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.mem_fetches, 1);
    }

    #[test]
    fn discard_local_drops_line_silently() {
        let mut h = mk();
        h.access(CoreId(0), blk(5), AccessKind::Store);
        h.discard_local(CoreId(0), blk(5));
        assert_eq!(h.l1_state(CoreId(0), blk(5)), MesiState::Invalid);
    }

    #[test]
    fn store_miss_with_dirty_peer_transfers_and_invalidates() {
        let mut h = mk();
        h.access(CoreId(0), blk(7), AccessKind::Store);
        let out = h.access(CoreId(1), blk(7), AccessKind::Store);
        assert_eq!(out.invalidated, vec![CoreId(0)]);
        assert_eq!(out.latency, Cycles(12));
        assert_eq!(h.l1_state(CoreId(1), blk(7)), MesiState::Modified);
        assert_eq!(h.l1_state(CoreId(0), blk(7)), MesiState::Invalid);
    }
}
