//! Cache hierarchy model for the HinTM reproduction.
//!
//! Models the paper's Table II memory system: per-core private L1 data
//! caches (32 KiB, 8-way, 64 B blocks, 3-cycle latency), a shared
//! non-inclusive L2 (8 MiB, 16-way, 12 cycles), snoopy MESI coherence, and
//! 100-cycle memory. The model tracks block presence and MESI state (no
//! data values — the simulator keeps logical values elsewhere) and returns,
//! for every access, the latency charged plus the coherence side effects the
//! HTM layer needs for eager conflict detection:
//!
//! * which remote cores were invalidated (a write took ownership),
//! * which remote cores were downgraded M→S (a read observed dirty data),
//! * which block, if any, was evicted from the local L1 (in-L1 transactional
//!   tracking aborts when a transactionally-marked line spills, §V "L1TM").
//!
//! # Examples
//!
//! ```
//! use hintm_cache::Hierarchy;
//! use hintm_types::{AccessKind, Addr, CoreId, MachineConfig};
//!
//! let mut mem = Hierarchy::new(&MachineConfig::default());
//! let block = Addr::new(0x4000).block();
//! let miss = mem.access(CoreId(0), block, AccessKind::Load);
//! assert!(!miss.l1_hit);
//! let hit = mem.access(CoreId(0), block, AccessKind::Load);
//! assert!(hit.l1_hit);
//! assert!(hit.latency < miss.latency);
//! ```

pub mod hierarchy;
pub mod set_assoc;

pub use hierarchy::{AccessOutcome, CacheStats, Hierarchy};
pub use set_assoc::{MesiState, SetAssocCache};
