//! The `hintm` command-line tool: run reproduction experiments from the
//! shell. See `hintm help` or [`hintm::cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match hintm::cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", hintm::cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let mut out = std::io::stdout().lock();
    match hintm::cli::execute(&cmd, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
