//! # HinTM — Safety Hints for HTM Capacity Abort Mitigation
//!
//! A from-scratch reproduction of the HPCA 2023 paper: a software–hardware
//! co-design that passes per-access *safety hints* to a conventional
//! Hardware Transactional Memory so that provably race-free accesses skip
//! transactional tracking, expanding the HTM's effective capacity and
//! eliminating capacity aborts.
//!
//! The workspace layers (all re-exported here):
//!
//! * [`hintm_types`] — addresses, identifiers, the Table II machine config;
//! * [`hintm_mem`] — simulated address space + trace-emitting structures;
//! * [`hintm_cache`] — MESI L1/L2 hierarchy;
//! * [`hintm_htm`] — the four HTM models (P8 / P8S / L1TM / InfCap);
//! * [`hintm_vm`] — page-level dynamic classification (Fig. 2) + TLBs;
//! * [`hintm_ir`] — the static classification compiler pipeline (§IV-A);
//! * [`hintm_sim`] — the execution-driven multicore engine;
//! * [`hintm_workloads`] — STAMP + TPC-C workload suite.
//!
//! # Quickstart
//!
//! ```
//! use hintm::{Experiment, HintMode, HtmKind};
//!
//! // Baseline POWER8-style HTM vs. full HinTM on vacation.
//! let base = Experiment::new("vacation").htm(HtmKind::P8).run()?;
//! let hinted = Experiment::new("vacation")
//!     .htm(HtmKind::P8)
//!     .hint_mode(HintMode::Full)
//!     .run()?;
//! println!(
//!     "speedup {:.2}x, capacity aborts {} -> {}",
//!     hinted.speedup_vs(&base),
//!     base.stats.aborts_of(hintm::AbortKind::Capacity),
//!     hinted.stats.aborts_of(hintm::AbortKind::Capacity),
//! );
//! # Ok::<(), hintm::UnknownWorkload>(())
//! ```

pub mod cli;
pub mod json;

pub use hintm_htm::{HtmConfig, HtmKind};
pub use hintm_sim::{
    AccessProgram, ExecMode, HintMode, Recording, RunStats, Section, SectionCompiler, SimConfig,
    Simulator, TraceEvent, TraceSink, TxBody, TxOp, Workload,
};
pub use hintm_trace::{chrome_trace, chrome_trace_to, write_binlog, write_binlog_to, TraceSummary};
pub use hintm_types::{AbortKind, AllocConfig, Cycles, MachineConfig, SmtMode};
pub use hintm_workloads::{all, by_name, by_name_with_threads, Scale, WORKLOAD_NAMES};
pub use json::{Json, JsonError};

use std::fmt;

/// Error: the requested workload name is not in the suite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownWorkload(pub String);

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload `{}` (expected one of {:?})",
            self.0, WORKLOAD_NAMES
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// A configured experiment: one workload under one HTM/hint configuration.
///
/// Builder-style; see the crate-level example.
#[derive(Clone, Debug)]
pub struct Experiment {
    workload: String,
    htm: HtmKind,
    hint_mode: HintMode,
    preserve: bool,
    scale: Scale,
    threads: Option<usize>,
    sim_threads: usize,
    smt2: bool,
    seed: u64,
    record_tx_sizes: bool,
    profile_sharing: bool,
    exec: ExecMode,
    alloc: AllocConfig,
    lrws_limits: Option<(usize, usize)>,
    max_stretches: Option<u32>,
}

impl Experiment {
    /// Creates an experiment for `workload` with the paper's defaults:
    /// P8 HTM, no hints, `Scale::Sim`, seed 42.
    pub fn new(workload: &str) -> Self {
        Experiment {
            workload: workload.to_string(),
            htm: HtmKind::P8,
            hint_mode: HintMode::Off,
            preserve: false,
            scale: Scale::Sim,
            threads: None,
            sim_threads: 1,
            smt2: false,
            seed: 42,
            record_tx_sizes: false,
            profile_sharing: false,
            exec: ExecMode::Interp,
            alloc: AllocConfig::default(),
            lrws_limits: None,
            max_stretches: None,
        }
    }

    /// Selects the HTM configuration.
    pub fn htm(mut self, kind: HtmKind) -> Self {
        self.htm = kind;
        self
    }

    /// Selects which HinTM mechanisms are active.
    pub fn hint_mode(mut self, mode: HintMode) -> Self {
        self.hint_mode = mode;
        self
    }

    /// Enables the §VI-B preserve optimization.
    pub fn preserve(mut self, on: bool) -> Self {
        self.preserve = on;
        self
    }

    /// Selects the input scale.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the workload's thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Shards section generation across `n` host threads (per-core lanes
    /// with epoch-merged execution). Results are bit-identical for every
    /// value; this only trades host parallelism for throughput. Clamped
    /// to at least 1.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n.max(1);
        self
    }

    /// Selects the execution tier ([`ExecMode`]): the `POp` interpreter,
    /// batch-compiled access programs, or the lockstep self-check. Like
    /// [`Experiment::sim_threads`], results are bit-identical for every
    /// value — the tier is a pure performance/verification knob.
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    /// Selects the heap-placement policy ([`AllocConfig`]) the workload's
    /// simulated allocator uses — the malloc-placement sensitivity axis.
    /// Unlike `sim_threads`/`exec`, placement changes the address stream
    /// and therefore the results.
    pub fn alloc(mut self, cfg: AllocConfig) -> Self {
        self.alloc = cfg;
        self
    }

    /// Overrides the [`HtmKind::Lrws`] read/write-set limits (defaults
    /// 32/32). Only meaningful under the LRWS model; with both limits at
    /// the buffer capacity the model degenerates to exact P8 tracking.
    pub fn lrws_limits(mut self, read: usize, write: usize) -> Self {
        self.lrws_limits = Some((read, write));
        self
    }

    /// Overrides the [`HtmKind::PStretch`] per-transaction stretch budget
    /// (default 4). Only meaningful under the PStretch model.
    pub fn max_stretches(mut self, n: u32) -> Self {
        self.max_stretches = Some(n);
        self
    }

    /// Enables 2-way SMT (16 hardware threads on 8 cores, §VI-D2).
    pub fn smt2(mut self, on: bool) -> Self {
        self.smt2 = on;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records per-committed-transaction footprints (Fig. 6 CDFs).
    pub fn record_tx_sizes(mut self, on: bool) -> Self {
        self.record_tx_sizes = on;
        self
    }

    /// Feeds every access to the sharing profiler (Fig. 1 metrics).
    pub fn profile_sharing(mut self, on: bool) -> Self {
        self.profile_sharing = on;
        self
    }

    /// Builds the [`SimConfig`] this experiment will run with.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::with_htm(self.htm).hint_mode(self.hint_mode);
        if self.smt2 {
            cfg = cfg.smt2();
        }
        cfg.preserve = self.preserve;
        cfg.record_tx_sizes = self.record_tx_sizes;
        cfg.profile_sharing = self.profile_sharing;
        cfg.sim_threads = self.sim_threads;
        cfg.exec = self.exec;
        if let Some((read, write)) = self.lrws_limits {
            cfg.htm.lrws_read_limit = read;
            cfg.htm.lrws_write_limit = write;
        }
        if let Some(n) = self.max_stretches {
            cfg.htm.max_stretches = n;
        }
        cfg
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if the workload name is not registered.
    pub fn run(&self) -> Result<RunReport, UnknownWorkload> {
        let mut w = self.workload()?;
        let sim = Simulator::new(self.sim_config());
        let stats = sim.run(w.as_mut(), self.seed);
        Ok(self.report(stats))
    }

    /// Runs the experiment with a [`Recording`] sink attached, retaining
    /// the first `trace_cap` events verbatim and folding all of them into
    /// metrics and the stream digest. The report embeds the recording's
    /// [`TraceSummary`]; its [`RunStats`] are bit-identical to an untraced
    /// run.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if the workload name is not registered.
    pub fn run_traced(&self, trace_cap: usize) -> Result<(RunReport, Recording), UnknownWorkload> {
        let mut w = self.workload()?;
        let sim = Simulator::new(self.sim_config());
        let mut rec = Recording::new(trace_cap);
        let stats = sim.run_with_sink(w.as_mut(), self.seed, &mut rec);
        let mut report = self.report(stats);
        report.trace = Some(rec.summary());
        Ok((report, rec))
    }

    /// Runs the experiment delivering every engine event to `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if the workload name is not registered.
    pub fn run_with_sink(&self, sink: &mut dyn TraceSink) -> Result<RunReport, UnknownWorkload> {
        let mut w = self.workload()?;
        let sim = Simulator::new(self.sim_config());
        let stats = sim.run_with_sink(w.as_mut(), self.seed, sink);
        Ok(self.report(stats))
    }

    /// Runs the experiment once per seed (run-to-run variance studies).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if the workload name is not registered.
    pub fn run_seeds(&self, seeds: &[u64]) -> Result<Vec<RunReport>, UnknownWorkload> {
        seeds
            .iter()
            .map(|&seed| {
                let mut e = self.clone();
                e.seed = seed;
                e.run()
            })
            .collect()
    }

    fn workload(&self) -> Result<Box<dyn Workload>, UnknownWorkload> {
        let mut w = match self.threads {
            Some(t) => by_name_with_threads(&self.workload, self.scale, t),
            None => by_name(&self.workload, self.scale),
        }
        .ok_or_else(|| UnknownWorkload(self.workload.clone()))?;
        w.set_alloc_config(self.alloc);
        Ok(w)
    }

    fn report(&self, stats: RunStats) -> RunReport {
        RunReport {
            workload: self.workload.clone(),
            htm: self.htm,
            hint_mode: self.hint_mode,
            stats,
            trace: None,
        }
    }
}

/// The result of one experiment run, with the paper's derived metrics.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// HTM configuration used.
    pub htm: HtmKind,
    /// Hint mode used.
    pub hint_mode: HintMode,
    /// Raw measured statistics.
    pub stats: RunStats,
    /// Trace metric summary, when the run was traced ([`Experiment::run_traced`]).
    pub trace: Option<TraceSummary>,
}

impl RunReport {
    /// Speedup relative to `baseline` (baseline cycles / this run's cycles).
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        self.stats.speedup_vs(&baseline.stats)
    }

    /// Relative reduction in capacity aborts vs `baseline` (1.0 = all gone).
    pub fn capacity_abort_reduction_vs(&self, baseline: &RunReport) -> f64 {
        self.stats
            .abort_reduction_vs(&baseline.stats, AbortKind::Capacity)
    }

    /// Relative reduction in false-conflict aborts vs `baseline`.
    pub fn false_conflict_reduction_vs(&self, baseline: &RunReport) -> f64 {
        self.stats
            .abort_reduction_vs(&baseline.stats, AbortKind::FalseConflict)
    }

    /// Fraction of this run's aggregate cycles spent on page-mode aborts.
    pub fn page_mode_fraction(&self) -> f64 {
        self.stats.page_mode_fraction()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} [{}]: {} cycles, {} commits ({} fallback), aborts {:?}",
            self.workload,
            self.htm,
            self.hint_mode,
            self.stats.total_cycles,
            self.stats.commits,
            self.stats.fallback_commits,
            self.stats.aborts,
        )
    }
}

/// Summary of a multi-seed sweep: min / geomean / max of a metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Spread {
    /// Smallest observation.
    pub min: f64,
    /// Geometric mean.
    pub geomean: f64,
    /// Largest observation.
    pub max: f64,
}

impl Spread {
    /// Computes the spread of `metric` over `reports`; `None` when empty.
    pub fn of(reports: &[RunReport], metric: impl Fn(&RunReport) -> f64) -> Option<Spread> {
        if reports.is_empty() {
            return None;
        }
        let vals: Vec<f64> = reports.iter().map(metric).collect();
        Some(Spread {
            min: vals.iter().copied().fold(f64::INFINITY, f64::min),
            geomean: hintm_types::stats_util::geomean(&vals),
            max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// Relative width of the spread: `(max - min) / geomean`.
    pub fn relative_width(&self) -> f64 {
        if self.geomean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.geomean
        }
    }
}

/// The paper's Fig. 1 metric: the fraction of runtime attributable to
/// capacity aborts, derived as the gap between a baseline run and the same
/// workload on InfCap (see §V, "Fig. 1's fraction of runtime wasted on
/// capacity aborts is derived as a comparison between InfCap and P8").
pub fn capacity_runtime_fraction(baseline: &RunReport, infcap: &RunReport) -> f64 {
    let b = baseline.stats.total_cycles.raw() as f64;
    let i = infcap.stats.total_cycles.raw() as f64;
    if b <= 0.0 {
        0.0
    } else {
        ((b - i) / b).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_errors() {
        let err = Experiment::new("not-a-workload").run().unwrap_err();
        assert!(err.to_string().contains("not-a-workload"));
    }

    #[test]
    fn builder_produces_matching_config() {
        let e = Experiment::new("kmeans")
            .htm(HtmKind::L1Tm)
            .hint_mode(HintMode::Full)
            .smt2(true)
            .preserve(true)
            .record_tx_sizes(true)
            .profile_sharing(true);
        let cfg = e.sim_config();
        assert_eq!(cfg.htm.kind, HtmKind::L1Tm);
        assert_eq!(cfg.hint_mode, HintMode::Full);
        assert_eq!(cfg.machine.hw_threads(), 16);
        assert!(cfg.preserve && cfg.record_tx_sizes && cfg.profile_sharing);
    }

    #[test]
    fn kmeans_runs_end_to_end() {
        let r = Experiment::new("kmeans").run().expect("runs");
        assert!(r.stats.commits > 0);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn capacity_runtime_fraction_is_gap() {
        let base = Experiment::new("labyrinth").threads(4).run().unwrap();
        let inf = Experiment::new("labyrinth")
            .threads(4)
            .htm(HtmKind::InfCap)
            .run()
            .unwrap();
        let frac = capacity_runtime_fraction(&base, &inf);
        assert!(
            frac > 0.3,
            "labyrinth wastes much of its runtime on capacity, got {frac:.2}"
        );
        assert!(frac < 1.0);
    }

    #[test]
    fn run_seeds_and_spread() {
        let reports = Experiment::new("ssca2").run_seeds(&[1, 2, 3]).unwrap();
        assert_eq!(reports.len(), 3);
        let spread = Spread::of(&reports, |r| r.stats.total_cycles.raw() as f64).expect("nonempty");
        assert!(spread.min <= spread.geomean && spread.geomean <= spread.max);
        assert!(spread.relative_width() >= 0.0);
        assert!(Spread::of(&[], |_| 0.0).is_none());
    }

    #[test]
    fn seeded_runs_reproduce() {
        let a = Experiment::new("ssca2").seed(7).run().unwrap();
        let b = Experiment::new("ssca2").seed(7).run().unwrap();
        assert_eq!(a.stats.total_cycles, b.stats.total_cycles);
    }
}
