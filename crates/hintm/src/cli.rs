//! Command-line interface: argument parsing and command execution for the
//! `hintm` binary.
//!
//! Hand-rolled parsing (no CLI dependency): three subcommands —
//!
//! ```text
//! hintm list
//! hintm run   --workload vacation [--htm p8|p8s|l1tm|infcap|rot|logtm|lrws|pstretch]
//!             [--hints off|static|dynamic|full] [--seed N] [--scale sim|large]
//!             [--threads N] [--smt2] [--preserve] [--csv]
//! hintm suite [--htm ...] [--hints ...] [--seed N] [--scale ...] [--csv]
//! hintm audit [--workloads a,b | --all] [--seed N] [--scale ...]
//! hintm trace <workload> [run options] [--events N] [--out <dir>]
//! ```

use crate::json::{analyze_report_to_json, audit_report_to_json, Json};
use crate::{
    chrome_trace, write_binlog, AbortKind, AllocConfig, ExecMode, Experiment, HintMode, HtmKind,
    RunReport, Scale, WORKLOAD_NAMES,
};
use hintm_audit::{AnalyzeReport, AuditReport};
use std::fmt;

/// A CLI parsing or execution error (rendered to stderr by the binary).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Print the workload registry.
    List,
    /// Run one experiment.
    Run(RunArgs),
    /// Run the whole suite under one configuration.
    Suite(RunArgs),
    /// Audit safety-hint soundness (verifier + lints + dynamic oracle).
    Audit(AuditArgs),
    /// Static capacity-footprint analysis + hint inference (no simulator
    /// run).
    Analyze(AnalyzeArgs),
    /// Run one experiment under a trace recorder and report/export the
    /// captured event stream.
    Trace(TraceArgs),
    /// Run a parallel sweep (dispatched by the `hintm-runner` binary).
    Sweep(SweepArgs),
    /// Time the pinned workload×model grid and compare against the newest
    /// committed baseline (dispatched by the `hintm-runner` binary).
    Perf(PerfArgs),
    /// Clear the on-disk result cache (dispatched by `hintm-serve`).
    CacheClear {
        /// Cache directory override.
        dir: Option<String>,
    },
    /// Summarize the on-disk result cache: entry count, bytes, schema,
    /// per-workload breakdown (dispatched by `hintm-serve`).
    CacheStats {
        /// Cache directory override.
        dir: Option<String>,
    },
    /// Run the sweep-as-a-service daemon (dispatched by `hintm-serve`).
    Serve(ServeArgs),
    /// Print usage.
    Help,
}

/// Options for `hintm serve`. Parsing lives here with the other commands;
/// execution lives in the `hintm-serve` crate, so [`execute`] rejects it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeArgs {
    /// Listen address (`HOST:PORT`).
    pub addr: String,
    /// Executor worker threads (`None` = the machine's available
    /// parallelism; `0` = serve the API only and rely on joined workers).
    pub workers: Option<usize>,
    /// Cache directory override.
    pub cache_dir: Option<String>,
    /// Instead of serving, join the daemon at this `HOST:PORT` as a
    /// worker: claim cells over HTTP, execute them locally, post the
    /// reports back.
    pub join: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:8191".into(),
            workers: None,
            cache_dir: None,
            join: None,
        }
    }
}

/// Options for `hintm audit`.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditArgs {
    /// Workloads to audit (empty = every registered workload).
    pub workloads: Vec<String>,
    /// Seed for the dynamically observed run.
    pub seed: u64,
    /// Input scale for the observed run.
    pub scale: Scale,
    /// Emit a JSON report instead of the table.
    pub json: bool,
}

impl Default for AuditArgs {
    fn default() -> Self {
        AuditArgs {
            workloads: Vec::new(),
            seed: 42,
            scale: Scale::Sim,
            json: false,
        }
    }
}

/// Options for `hintm analyze`.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzeArgs {
    /// Workloads to analyze (empty = every registered workload).
    pub workloads: Vec<String>,
    /// Input scale the modules are annotated for.
    pub scale: Scale,
    /// Emit a JSON report instead of the table.
    pub json: bool,
}

impl Default for AnalyzeArgs {
    fn default() -> Self {
        AnalyzeArgs {
            workloads: Vec::new(),
            scale: Scale::Sim,
            json: false,
        }
    }
}

/// Options for `hintm trace`.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceArgs {
    /// Run configuration; the workload is `trace`'s positional argument.
    pub run: RunArgs,
    /// Directory for `<workload>.trace.json` (Chrome trace_event) and
    /// `<workload>.trace.bin` (compact binary log).
    pub out: Option<String>,
    /// Trace buffer capacity: how many events are retained verbatim
    /// (metrics and the digest always cover the whole run).
    pub events: usize,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            run: RunArgs::default(),
            out: None,
            events: 100_000,
        }
    }
}

/// Options for `hintm sweep`. Parsing lives here with the other commands;
/// execution lives in the `hintm-runner` crate (which depends on this
/// one), so [`execute`] rejects it.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepArgs {
    /// Workloads to sweep (empty = every registered workload).
    pub workloads: Vec<String>,
    /// HTM configurations to sweep (empty = `[P8]`).
    pub htms: Vec<HtmKind>,
    /// Hint modes to sweep (empty = `[off]`).
    pub hints: Vec<HintMode>,
    /// Seeds to sweep (empty = `[42]`).
    pub seeds: Vec<u64>,
    /// Input scale.
    pub scale: Scale,
    /// Thread-count override.
    pub threads: Option<usize>,
    /// Host generation threads per cell (per-core lanes; results are
    /// bit-identical for every value, so the cache is shared across it).
    pub sim_threads: usize,
    /// Execution tier for every cell (bit-identical results; the cache is
    /// shared across it, like `sim_threads`).
    pub exec: ExecMode,
    /// 2-way SMT.
    pub smt2: bool,
    /// §VI-B preserve optimization.
    pub preserve: bool,
    /// Heap-placement color strides to sweep (empty = `[0]`, the packed
    /// default). A result-affecting axis, unlike `sim_threads`/`exec`.
    pub alloc_colors: Vec<u64>,
    /// Sweep a three-workload smoke subset instead of every registered
    /// workload (ignored when `--workloads` names them explicitly).
    pub smoke: bool,
    /// Worker threads (`None` = the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Bypass the result cache entirely.
    pub no_cache: bool,
    /// Resume an interrupted sweep from the cache (the default behavior;
    /// the flag documents intent and conflicts with `--no-cache`).
    pub resume: bool,
    /// Cache directory override.
    pub cache_dir: Option<String>,
    /// Artifact output directory (manifest + CSV/JSON tables).
    pub out: Option<String>,
    /// Also print the results CSV to stdout.
    pub csv: bool,
    /// Audit every swept workload after the sweep (fails on unsound hints).
    pub audit: bool,
    /// Statically analyze every swept workload after the sweep (fails on
    /// lint or verifier errors).
    pub analyze: bool,
    /// Trace every cell, summarizing metrics per cell and exporting the
    /// event streams under `<out>/traces/` (forces a cache bypass).
    pub trace: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            workloads: Vec::new(),
            htms: Vec::new(),
            hints: Vec::new(),
            seeds: Vec::new(),
            scale: Scale::Sim,
            threads: None,
            sim_threads: 1,
            exec: ExecMode::Interp,
            smt2: false,
            preserve: false,
            alloc_colors: Vec::new(),
            smoke: false,
            jobs: None,
            no_cache: false,
            resume: false,
            cache_dir: None,
            out: None,
            csv: false,
            audit: false,
            analyze: false,
            trace: false,
        }
    }
}

/// Options for `hintm perf`. Parsing lives here with the other commands;
/// execution lives in the `hintm-runner` crate, so [`execute`] rejects it.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfArgs {
    /// Use the 3-cell smoke grid instead of the full pinned grid.
    pub smoke: bool,
    /// Host generation threads used for every timed run. Recorded in the
    /// snapshot; baselines taken at a different thread count refuse to
    /// compare.
    pub threads: usize,
    /// Execution tier for every timed run. Recorded in the snapshot;
    /// baselines taken under a different tier refuse to compare (same
    /// rule as `threads`).
    pub exec: ExecMode,
    /// Timed repetitions per cell. The slowest repetition is dropped as
    /// noise when `repeat >= 3`, then the median of the rest is reported.
    pub repeat: usize,
    /// Untimed warmup runs per cell.
    pub warmup: usize,
    /// Directory holding `BENCH_*.json` files (read and written).
    pub out: Option<String>,
    /// Explicit baseline file (default: newest `BENCH_*.json` in `out`).
    pub baseline: Option<String>,
    /// Regression threshold as a fraction (overrides
    /// `HINTM_PERF_THRESHOLD`; default 0.25 = fail when >25% slower).
    pub threshold: Option<f64>,
    /// Measure and write the snapshot without comparing to a baseline.
    pub no_compare: bool,
}

impl Default for PerfArgs {
    fn default() -> Self {
        PerfArgs {
            smoke: false,
            threads: 1,
            exec: ExecMode::Interp,
            repeat: 5,
            warmup: 1,
            out: None,
            baseline: None,
            threshold: None,
            no_compare: false,
        }
    }
}

/// Options shared by `run` and `suite`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    /// Workload name (`run` only; ignored by `suite`).
    pub workload: Option<String>,
    /// HTM configuration.
    pub htm: HtmKind,
    /// Hint mode.
    pub hints: HintMode,
    /// Run seed.
    pub seed: u64,
    /// Input scale.
    pub scale: Scale,
    /// Thread-count override.
    pub threads: Option<usize>,
    /// Host threads for section generation (per-core lanes; results are
    /// bit-identical for every value).
    pub sim_threads: usize,
    /// Execution tier (interpreted, batch-compiled, or both in lockstep;
    /// results are bit-identical for every value).
    pub exec: ExecMode,
    /// 2-way SMT.
    pub smt2: bool,
    /// §VI-B preserve optimization.
    pub preserve: bool,
    /// Heap-placement color stride in bytes (`--alloc-color`): padding
    /// inserted after every fresh heap allocation. `0` keeps the packed
    /// default. Unlike `sim_threads`/`exec` this changes simulated
    /// addresses, so it changes results.
    pub alloc_color: u64,
    /// Emit CSV instead of a table.
    pub csv: bool,
    /// Print a lifecycle timeline after the run (`run` only).
    pub trace: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            workload: None,
            htm: HtmKind::P8,
            hints: HintMode::Off,
            seed: 42,
            scale: Scale::Sim,
            threads: None,
            sim_threads: 1,
            exec: ExecMode::Interp,
            smt2: false,
            preserve: false,
            alloc_color: 0,
            csv: false,
            trace: false,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
hintm — HinTM (HPCA 2023) reproduction CLI

USAGE:
  hintm list
  hintm run --workload <name> [options]
  hintm suite [options]
  hintm audit [audit options]
  hintm analyze [<workload>] [analyze options]
  hintm trace <workload> [options] [trace options]
  hintm sweep [sweep options]
  hintm perf [perf options]
  hintm serve [serve options]
  hintm cache clear [--cache-dir <dir>]
  hintm cache stats [--cache-dir <dir>]

OPTIONS:
  --workload <name>        one of the registered workloads (see `hintm list`)
  --htm <kind>             p8 | p8s | l1tm | infcap | rot | logtm |
                           lrws | pstretch                          [p8]
  --hints <mode>           off | static | dynamic | full            [off]
  --seed <n>               run seed                                  [42]
  --scale <s>              sim | large                              [sim]
  --threads <n>            override the workload's thread count
  --sim-threads <n>        host threads for section generation (per-core
                           lanes; results are bit-identical for any value) [1]
  --exec <tier>            interp | compiled | both                  [interp]
                           execution tier for resolved sections: `compiled`
                           replays batch-compiled access programs, `both`
                           runs the tiers in lockstep and fails loudly on
                           the first divergence; results are bit-identical
                           for every tier
  --smt2                   2-way SMT (16 hardware threads)
  --preserve               enable the preserve page-transition optimization
  --alloc-color <bytes>    heap-placement color stride: pad every fresh heap
                           allocation by <bytes>. Changes simulated addresses
                           (and so abort counts), never committed state    [0]
  --csv                    machine-readable CSV output
  --trace                  print a per-thread lifecycle timeline (run only)

TRACE OPTIONS (records the run's event stream; run options above apply):
  --events <n>             events retained in the trace buffer         [100000]
  --out <dir>              write <workload>.trace.json (Chrome trace_event)
                           and <workload>.trace.bin (binary log) into <dir>

AUDIT OPTIONS (verifier + lints + dynamic sharing oracle; exits nonzero
on any unsound hint, lint error, verifier error, or hint-table mismatch):
  --workloads <a,b,..>     workloads to audit                  [all registered]
  --all                    audit every registered workload (the default)
  --seed / --scale         as above, for the dynamically observed run
  --json                   emit a JSON report instead of the table

ANALYZE OPTIONS (static capacity-footprint bounds + per-model verdicts +
hint inference diff; no simulator run; exits nonzero on any lint or
verifier error):
  <workload>               positional: analyze one workload
  --workloads <a,b,..>     workloads to analyze                [all registered]
  --all                    analyze every registered workload (the default)
  --scale <s>              scale the module annotations describe         [sim]
  --json                   emit a JSON report instead of the table

SWEEP OPTIONS (comma-separated lists sweep the cross product):
  --workloads <a,b,..>     workloads to sweep                  [all registered]
  --htm <k1,k2,..>         HTM configurations to sweep                    [p8]
  --models <k1,k2,..>      alias for --htm
  --hints <m1,m2,..>       hint modes to sweep                           [off]
  --seeds <n1,n2,..>       seeds to sweep                                 [42]
  --alloc-colors <b1,b2,.> heap-placement color strides to sweep (a
                           result-affecting axis; --alloc-color also works) [0]
  --smoke                  sweep a fast three-workload smoke subset instead
                           of every registered workload
  --scale / --threads / --sim-threads / --exec / --smt2 / --preserve
                           as above, applied to every cell
  --jobs <n>               worker threads            [machine's parallelism]
  --no-cache               bypass the on-disk result cache
  --resume                 resume an interrupted sweep from the cache
  --cache-dir <dir>        cache location      [$HINTM_CACHE_DIR or .hintm-cache]
  --out <dir>              write manifest.json + results.{csv,json} here
  --csv                    also print the results CSV to stdout
  --audit                  audit every swept workload after the sweep
  --analyze                statically analyze every swept workload after the
                           sweep (fails on lint/verifier errors)
  --trace                  trace every cell (bypasses the cache); with --out,
                           exports event streams under <out>/traces/

SERVE OPTIONS (long-running daemon: HTTP API over a job queue that shares
the result cache across workers and repeat submissions):
  --addr <host:port>       listen address                     [127.0.0.1:8191]
  --workers <n>            executor threads [machine's parallelism; 0 = API
                           only, cells wait for joined workers]
  --cache-dir <dir>        cache location      [$HINTM_CACHE_DIR or .hintm-cache]
  --join <host:port>       join the daemon at host:port as a worker process:
                           claim cells over HTTP, run them, post reports back

PERF OPTIONS (times the pinned grid, writes BENCH_<date>.json, and fails
when the median events/sec regresses past the threshold):
  --smoke                  3-cell smoke grid instead of the full 15-cell grid
  --threads <n>            host generation threads for every timed run;
                           recorded in the snapshot, and baselines taken at a
                           different count refuse to compare               [1]
  --exec <tier>            interp | compiled | both for every timed run;
                           recorded in the snapshot, and baselines taken
                           under a different tier refuse to compare   [interp]
  --repeat <n>             timed repetitions per cell; with --repeat >= 3 the
                           slowest repetition is dropped as noise and the
                           median of the rest is reported (at 1-2 reps every
                           sample counts, so the median is over all of them) [5]
  --warmup <n>             untimed warmup runs per cell                    [1]
  --out <dir>              directory for BENCH_*.json snapshots            [.]
  --baseline <file>        explicit baseline   [newest BENCH_*.json in --out]
  --threshold <f>          failure threshold as a fraction
                           [$HINTM_PERF_THRESHOLD or 0.25]
  --no-compare             measure and write the snapshot only
";

/// Parses an HTM configuration name (`p8`, `infcap`, ...) as the CLI and
/// the server's sweep-spec JSON spell it.
///
/// # Errors
///
/// Returns [`CliError`] on an unknown name.
pub fn parse_htm(v: &str) -> Result<HtmKind, CliError> {
    match v.to_ascii_lowercase().as_str() {
        "p8" => Ok(HtmKind::P8),
        "p8s" => Ok(HtmKind::P8S),
        "l1tm" => Ok(HtmKind::L1Tm),
        "infcap" => Ok(HtmKind::InfCap),
        "rot" => Ok(HtmKind::Rot),
        "logtm" => Ok(HtmKind::LogTm),
        "lrws" => Ok(HtmKind::Lrws),
        "pstretch" => Ok(HtmKind::PStretch),
        other => Err(CliError(format!("unknown --htm `{other}`"))),
    }
}

/// Parses a hint-mode name (`off`, `static`, `dynamic`, `full`, plus the
/// `st`/`dyn` aliases) as the CLI and the server's sweep-spec JSON spell
/// it.
///
/// # Errors
///
/// Returns [`CliError`] on an unknown name.
pub fn parse_hints(v: &str) -> Result<HintMode, CliError> {
    match v.to_ascii_lowercase().as_str() {
        "off" => Ok(HintMode::Off),
        "static" | "st" => Ok(HintMode::Static),
        "dynamic" | "dyn" => Ok(HintMode::Dynamic),
        "full" => Ok(HintMode::Full),
        other => Err(CliError(format!("unknown --hints `{other}`"))),
    }
}

/// Parses a scale name (`sim` | `large`) as the CLI and the server's
/// sweep-spec JSON spell it.
///
/// # Errors
///
/// Returns [`CliError`] on an unknown name.
pub fn parse_scale(v: &str) -> Result<Scale, CliError> {
    match v.to_ascii_lowercase().as_str() {
        "sim" => Ok(Scale::Sim),
        "large" => Ok(Scale::Large),
        other => Err(CliError(format!("unknown --scale `{other}`"))),
    }
}

/// The inverse of [`parse_scale`]: a scale's canonical name.
pub fn scale_str(s: Scale) -> &'static str {
    match s {
        Scale::Sim => "sim",
        Scale::Large => "large",
    }
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown subcommands, unknown flags, missing or
/// malformed values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "audit" => parse_audit(&args[1..]),
        "analyze" => parse_analyze(&args[1..]),
        "trace" => parse_trace(&args[1..]),
        "sweep" => parse_sweep(&args[1..]),
        "perf" => parse_perf(&args[1..]),
        "cache" => parse_cache(&args[1..]),
        "serve" => parse_serve(&args[1..]),
        "run" | "suite" => {
            let mut ra = RunArgs::default();
            let mut i = 1;
            let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| CliError(format!("{flag} requires a value")))
            };
            while i < args.len() {
                match args[i].as_str() {
                    "--workload" => ra.workload = Some(value(&mut i, "--workload")?),
                    "--htm" => ra.htm = parse_htm(&value(&mut i, "--htm")?)?,
                    "--hints" => ra.hints = parse_hints(&value(&mut i, "--hints")?)?,
                    "--seed" => {
                        let v = value(&mut i, "--seed")?;
                        ra.seed = v
                            .parse()
                            .map_err(|_| CliError(format!("bad --seed `{v}`")))?;
                    }
                    "--scale" => ra.scale = parse_scale(&value(&mut i, "--scale")?)?,
                    "--threads" => {
                        let v = value(&mut i, "--threads")?;
                        ra.threads = Some(
                            v.parse()
                                .map_err(|_| CliError(format!("bad --threads `{v}`")))?,
                        );
                    }
                    "--sim-threads" => {
                        let v = value(&mut i, "--sim-threads")?;
                        ra.sim_threads = parse_sim_threads(&v)?;
                    }
                    "--exec" => ra.exec = parse_exec(&value(&mut i, "--exec")?)?,
                    "--smt2" => ra.smt2 = true,
                    "--preserve" => ra.preserve = true,
                    "--alloc-color" => {
                        ra.alloc_color = parse_alloc_color(&value(&mut i, "--alloc-color")?)?;
                    }
                    "--csv" => ra.csv = true,
                    "--trace" => ra.trace = true,
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            if sub == "run" {
                if ra.workload.is_none() {
                    return Err(CliError("`run` requires --workload <name>".into()));
                }
                Ok(Command::Run(ra))
            } else {
                Ok(Command::Suite(ra))
            }
        }
        other => Err(CliError(format!(
            "unknown command `{other}` (try `hintm help`)"
        ))),
    }
}

/// Parses an execution-tier name (`interp` | `compiled` | `both`) as the
/// CLI and the server's sweep-spec JSON spell it.
///
/// # Errors
///
/// Returns [`CliError`] on an unknown name.
pub fn parse_exec(v: &str) -> Result<ExecMode, CliError> {
    ExecMode::parse(&v.to_ascii_lowercase())
        .ok_or_else(|| CliError(format!("unknown --exec `{v}` (interp | compiled | both)")))
}

/// Parses a heap-placement color stride in bytes (`--alloc-color`).
fn parse_alloc_color(v: &str) -> Result<u64, CliError> {
    v.parse()
        .map_err(|_| CliError(format!("bad --alloc-color `{v}` (expected bytes >= 0)")))
}

/// Parses a host-thread count (at least 1) for the parallel engine.
fn parse_sim_threads(v: &str) -> Result<usize, CliError> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(CliError(format!(
            "bad thread count `{v}` (expected an integer >= 1)"
        ))),
    }
}

/// Splits a comma-separated flag value, mapping each piece through `f`.
fn parse_list<T>(v: &str, f: impl Fn(&str) -> Result<T, CliError>) -> Result<Vec<T>, CliError> {
    v.split(',').filter(|s| !s.is_empty()).map(f).collect()
}

fn parse_audit(args: &[String]) -> Result<Command, CliError> {
    let mut aa = AuditArgs::default();
    let mut all = false;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => {
                aa.workloads = parse_list(&value(&mut i, "--workloads")?, |s| Ok(s.to_string()))?;
            }
            "--all" => all = true,
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                aa.seed = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --seed `{v}`")))?;
            }
            "--scale" => aa.scale = parse_scale(&value(&mut i, "--scale")?)?,
            "--json" => aa.json = true,
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
        i += 1;
    }
    if all && !aa.workloads.is_empty() {
        return Err(CliError("--all conflicts with --workloads".into()));
    }
    Ok(Command::Audit(aa))
}

fn parse_analyze(args: &[String]) -> Result<Command, CliError> {
    let mut na = AnalyzeArgs::default();
    let mut all = false;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => {
                na.workloads = parse_list(&value(&mut i, "--workloads")?, |s| Ok(s.to_string()))?;
            }
            "--all" => all = true,
            "--scale" => na.scale = parse_scale(&value(&mut i, "--scale")?)?,
            "--json" => na.json = true,
            name if !name.starts_with('-') => na.workloads.push(name.to_string()),
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
        i += 1;
    }
    if all && !na.workloads.is_empty() {
        return Err(CliError("--all conflicts with naming workloads".into()));
    }
    Ok(Command::Analyze(na))
}

fn parse_trace(args: &[String]) -> Result<Command, CliError> {
    let mut ta = TraceArgs::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => ta.run.workload = Some(value(&mut i, "--workload")?),
            "--htm" => ta.run.htm = parse_htm(&value(&mut i, "--htm")?)?,
            "--hints" => ta.run.hints = parse_hints(&value(&mut i, "--hints")?)?,
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                ta.run.seed = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --seed `{v}`")))?;
            }
            "--scale" => ta.run.scale = parse_scale(&value(&mut i, "--scale")?)?,
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                ta.run.threads = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad --threads `{v}`")))?,
                );
            }
            "--sim-threads" => {
                let v = value(&mut i, "--sim-threads")?;
                ta.run.sim_threads = parse_sim_threads(&v)?;
            }
            "--exec" => ta.run.exec = parse_exec(&value(&mut i, "--exec")?)?,
            "--smt2" => ta.run.smt2 = true,
            "--preserve" => ta.run.preserve = true,
            "--alloc-color" => {
                ta.run.alloc_color = parse_alloc_color(&value(&mut i, "--alloc-color")?)?;
            }
            "--events" => {
                let v = value(&mut i, "--events")?;
                ta.events = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --events `{v}`")))?;
            }
            "--out" => ta.out = Some(value(&mut i, "--out")?),
            name if !name.starts_with('-') && ta.run.workload.is_none() => {
                ta.run.workload = Some(name.to_string());
            }
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
        i += 1;
    }
    if ta.run.workload.is_none() {
        return Err(CliError("`trace` requires a workload name".into()));
    }
    Ok(Command::Trace(ta))
}

fn parse_sweep(args: &[String]) -> Result<Command, CliError> {
    let mut sa = SweepArgs::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => {
                sa.workloads = parse_list(&value(&mut i, "--workloads")?, |s| Ok(s.to_string()))?;
            }
            flag @ ("--htm" | "--models") => {
                sa.htms = parse_list(&value(&mut i, flag)?, parse_htm)?;
            }
            "--hints" => sa.hints = parse_list(&value(&mut i, "--hints")?, parse_hints)?,
            "--seeds" => {
                sa.seeds = parse_list(&value(&mut i, "--seeds")?, |s| {
                    s.parse().map_err(|_| CliError(format!("bad seed `{s}`")))
                })?;
            }
            "--scale" => sa.scale = parse_scale(&value(&mut i, "--scale")?)?,
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                sa.threads = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad --threads `{v}`")))?,
                );
            }
            "--sim-threads" => {
                let v = value(&mut i, "--sim-threads")?;
                sa.sim_threads = parse_sim_threads(&v)?;
            }
            "--exec" => sa.exec = parse_exec(&value(&mut i, "--exec")?)?,
            "--smt2" => sa.smt2 = true,
            "--preserve" => sa.preserve = true,
            flag @ ("--alloc-color" | "--alloc-colors") => {
                sa.alloc_colors = parse_list(&value(&mut i, flag)?, parse_alloc_color)?;
            }
            "--smoke" => sa.smoke = true,
            "--jobs" => {
                let v = value(&mut i, "--jobs")?;
                sa.jobs = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad --jobs `{v}`")))?,
                );
            }
            "--no-cache" => sa.no_cache = true,
            "--resume" => sa.resume = true,
            "--cache-dir" => sa.cache_dir = Some(value(&mut i, "--cache-dir")?),
            "--out" => sa.out = Some(value(&mut i, "--out")?),
            "--csv" => sa.csv = true,
            "--audit" => sa.audit = true,
            "--analyze" => sa.analyze = true,
            "--trace" => sa.trace = true,
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
        i += 1;
    }
    if sa.no_cache && sa.resume {
        return Err(CliError("--resume needs the cache; drop --no-cache".into()));
    }
    Ok(Command::Sweep(sa))
}

fn parse_perf(args: &[String]) -> Result<Command, CliError> {
    let mut pa = PerfArgs::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => pa.smoke = true,
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                pa.threads = parse_sim_threads(&v)?;
            }
            "--exec" => pa.exec = parse_exec(&value(&mut i, "--exec")?)?,
            "--repeat" => {
                let v = value(&mut i, "--repeat")?;
                pa.repeat = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --repeat `{v}`")))?;
            }
            "--warmup" => {
                let v = value(&mut i, "--warmup")?;
                pa.warmup = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --warmup `{v}`")))?;
            }
            "--out" => pa.out = Some(value(&mut i, "--out")?),
            "--baseline" => pa.baseline = Some(value(&mut i, "--baseline")?),
            "--threshold" => {
                let v = value(&mut i, "--threshold")?;
                let t: f64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --threshold `{v}`")))?;
                if !(0.0..1.0).contains(&t) {
                    return Err(CliError(format!(
                        "--threshold must be a fraction in [0, 1), got `{v}`"
                    )));
                }
                pa.threshold = Some(t);
            }
            "--no-compare" => pa.no_compare = true,
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
        i += 1;
    }
    if pa.repeat == 0 {
        return Err(CliError("--repeat must be at least 1".into()));
    }
    Ok(Command::Perf(pa))
}

fn parse_cache(args: &[String]) -> Result<Command, CliError> {
    match args.first().map(String::as_str) {
        Some(action @ ("clear" | "stats")) => {
            let mut dir = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--cache-dir" => {
                        i += 1;
                        dir = Some(
                            args.get(i)
                                .cloned()
                                .ok_or_else(|| CliError("--cache-dir requires a value".into()))?,
                        );
                    }
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(if action == "clear" {
                Command::CacheClear { dir }
            } else {
                Command::CacheStats { dir }
            })
        }
        Some(other) => Err(CliError(format!(
            "unknown cache action `{other}` (try `clear` or `stats`)"
        ))),
        None => Err(CliError(
            "`cache` requires an action (try `hintm cache clear` or `hintm cache stats`)".into(),
        )),
    }
}

fn parse_serve(args: &[String]) -> Result<Command, CliError> {
    let mut sa = ServeArgs::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => sa.addr = value(&mut i, "--addr")?,
            "--workers" => {
                let v = value(&mut i, "--workers")?;
                sa.workers = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad --workers `{v}`")))?,
                );
            }
            "--cache-dir" => sa.cache_dir = Some(value(&mut i, "--cache-dir")?),
            "--join" => sa.join = Some(value(&mut i, "--join")?),
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
        i += 1;
    }
    if sa.join.is_some() && sa.workers == Some(0) {
        return Err(CliError(
            "--join needs at least one worker; drop --workers 0".into(),
        ));
    }
    Ok(Command::Serve(sa))
}

fn experiment(name: &str, ra: &RunArgs) -> Experiment {
    let mut e = Experiment::new(name)
        .htm(ra.htm)
        .hint_mode(ra.hints)
        .seed(ra.seed)
        .scale(ra.scale)
        .smt2(ra.smt2)
        .preserve(ra.preserve)
        .sim_threads(ra.sim_threads)
        .exec(ra.exec)
        .alloc(AllocConfig {
            color_stride: ra.alloc_color,
            ..AllocConfig::default()
        });
    if let Some(t) = ra.threads {
        e = e.threads(t);
    }
    e
}

fn run_one(name: &str, ra: &RunArgs) -> Result<RunReport, CliError> {
    experiment(name, ra)
        .run()
        .map_err(|e| CliError(e.to_string()))
}

/// CSV header matching [`csv_row`].
pub const CSV_HEADER: &str = "workload,htm,hints,seed,cycles,commits,fallback,\
conflict,capacity,false_conflict,page_mode,lock,shootdowns,safe_pages,total_pages";

/// Renders one report as a CSV row.
pub fn csv_row(r: &RunReport, seed: u64) -> String {
    let s = &r.stats;
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        r.workload,
        r.htm,
        r.hint_mode,
        seed,
        s.total_cycles.raw(),
        s.commits,
        s.fallback_commits,
        s.aborts_of(AbortKind::Conflict),
        s.aborts_of(AbortKind::Capacity),
        s.aborts_of(AbortKind::FalseConflict),
        s.aborts_of(AbortKind::PageMode),
        s.aborts_of(AbortKind::FallbackLock),
        s.vm.shootdowns,
        s.safe_pages.0,
        s.safe_pages.1,
    )
}

/// Column header matching [`audit_row`].
pub fn audit_header() -> String {
    format!(
        "{:<12} {:>5} {:>5} {:>5} {:>7} {:>6} {:>5} {:>5}  verdict",
        "workload", "sites", "safe", "exec", "unsound", "missed", "lintE", "lintW",
    )
}

/// Renders one audit report as a fixed-width table row.
pub fn audit_row(r: &AuditReport) -> String {
    format!(
        "{:<12} {:>5} {:>5} {:>5} {:>7} {:>6} {:>5} {:>5}  {}",
        r.workload,
        r.stats.num_sites,
        r.stats.safe_loads + r.stats.safe_stores,
        r.sites_executed,
        r.unsound.len(),
        r.missed.len(),
        r.lint_errors(),
        r.lint_warnings(),
        if r.passed() { "PASS" } else { "FAIL" },
    )
}

/// Column header matching [`analyze_row`].
pub fn analyze_header() -> String {
    format!(
        "{:<12} {:>3} {:>3}  {:<13} {:<13} {:<13} {:<13} {:<13} {:>4} {:>4} {:>5} {:>5}  verdict",
        "workload",
        "txs",
        "unb",
        "P8",
        "P8S",
        "L1TM",
        "LRWS",
        "PStretch",
        "decl",
        "inf",
        "lintE",
        "lintW",
    )
}

/// Renders one analyze report as a fixed-width table row.
pub fn analyze_row(r: &AnalyzeReport) -> String {
    let s = r.stats();
    format!(
        "{:<12} {:>3} {:>3}  {:<13} {:<13} {:<13} {:<13} {:<13} {:>4} {:>4} {:>5} {:>5}  {}",
        r.workload,
        s.num_txs,
        s.unbounded_txs,
        s.worst[0].to_string(),
        s.worst[1].to_string(),
        s.worst[2].to_string(),
        s.worst[3].to_string(),
        s.worst[4].to_string(),
        s.declared_safe,
        s.inferred_safe,
        r.lint_errors(),
        r.lint_warnings(),
        if r.passed() { "PASS" } else { "FAIL" },
    )
}

/// Writes one analyze report's detail lines (per-transaction bounds,
/// verifier errors, lint diagnostics) beneath its table row.
fn analyze_details(r: &AnalyzeReport, out: &mut impl std::io::Write) -> std::io::Result<()> {
    for (tx, func) in r.footprint.txs.iter().zip(&r.tx_funcs) {
        writeln!(
            out,
            "    tx#{} in {func}: reads<={} writes<={} total<={}, guaranteed {} ({} written)",
            tx.index, tx.read_hi, tx.write_hi, tx.total_hi, tx.total_lo, tx.write_lo,
        )?;
    }
    for e in &r.verify_errors {
        writeln!(out, "    verify: {e}")?;
    }
    for d in &r.diagnostics {
        writeln!(out, "    {d}")?;
    }
    Ok(())
}

/// Writes one report's detail lines (verifier errors, lint diagnostics,
/// unsound hints, hint-table mismatch) beneath its table row.
fn audit_details(r: &AuditReport, out: &mut impl std::io::Write) -> std::io::Result<()> {
    for e in &r.verify_errors {
        writeln!(out, "    verify: {e}")?;
    }
    for d in &r.diagnostics {
        writeln!(out, "    {d}")?;
    }
    for u in &r.unsound {
        writeln!(
            out,
            "    unsound: site {} {:?} at {:#x} by thread {} in epoch {}",
            u.site.0,
            u.kind,
            u.addr.raw(),
            u.thread.0,
            u.epoch,
        )?;
    }
    if r.hint_mismatch {
        writeln!(out, "    hint table differs from the classifier's output")?;
    }
    Ok(())
}

/// Executes a parsed command, writing to `out`.
///
/// # Errors
///
/// Returns [`CliError`] if an experiment fails to run.
pub fn execute(cmd: &Command, out: &mut impl std::io::Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| CliError(e.to_string());
    match cmd {
        Command::Sweep(_)
        | Command::Perf(_)
        | Command::Serve(_)
        | Command::CacheClear { .. }
        | Command::CacheStats { .. } => Err(CliError(
            "`sweep`, `perf`, `serve`, and `cache` are handled by the hintm binary from \
             the hintm-serve crate"
                .into(),
        )),
        Command::Help => writeln!(out, "{USAGE}").map_err(io),
        Command::List => {
            for name in WORKLOAD_NAMES {
                writeln!(out, "{name}").map_err(io)?;
            }
            Ok(())
        }
        Command::Run(ra) => {
            let name = ra.workload.as_deref().expect("validated by parse");
            if ra.trace {
                let (r, trace) = experiment(name, ra)
                    .run_traced(100_000)
                    .map_err(|e| CliError(e.to_string()))?;
                writeln!(out, "{r}").map_err(io)?;
                let threads = if ra.smt2 { 16 } else { 8 };
                writeln!(
                    out,
                    "
timeline (C commit, a/A/P aborts, F fallback, s shootdown):"
                )
                .map_err(io)?;
                writeln!(out, "{}", trace.render_timeline(threads, 100)).map_err(io)?;
                return Ok(());
            }
            let r = run_one(name, ra)?;
            if ra.csv {
                writeln!(out, "{CSV_HEADER}").map_err(io)?;
                writeln!(out, "{}", csv_row(&r, ra.seed)).map_err(io)?;
            } else {
                writeln!(out, "{r}").map_err(io)?;
            }
            Ok(())
        }
        Command::Trace(ta) => {
            let name = ta.run.workload.as_deref().expect("validated by parse");
            let (r, rec) = experiment(name, &ta.run)
                .run_traced(ta.events)
                .map_err(|e| CliError(e.to_string()))?;
            writeln!(out, "{r}").map_err(io)?;
            let t = r.trace.expect("run_traced fills the summary");
            writeln!(
                out,
                "trace: {} events ({} beyond the buffer), digest {:016x}",
                t.events, t.dropped, t.digest
            )
            .map_err(io)?;
            writeln!(
                out,
                "       occupancy hwm {} blocks; commit footprint mean {:.1}; \
                 retries mean {:.2}",
                t.occupancy_hwm,
                t.commit_footprint.mean(),
                t.retries.mean()
            )
            .map_err(io)?;
            let threads = if ta.run.smt2 { 16 } else { 8 };
            writeln!(
                out,
                "\ntimeline (C commit, a/A/P aborts, F fallback, s shootdown):"
            )
            .map_err(io)?;
            writeln!(out, "{}", rec.render_timeline(threads, 100)).map_err(io)?;
            if let Some(dir) = &ta.out {
                std::fs::create_dir_all(dir).map_err(io)?;
                let json_path = format!("{dir}/{name}.trace.json");
                let bin_path = format!("{dir}/{name}.trace.bin");
                let events = rec.events();
                std::fs::write(&json_path, chrome_trace(&events)).map_err(io)?;
                std::fs::write(&bin_path, write_binlog(&events)).map_err(io)?;
                writeln!(out, "wrote {json_path} and {bin_path}").map_err(io)?;
            }
            Ok(())
        }
        Command::Audit(aa) => {
            let names: Vec<String> = if aa.workloads.is_empty() {
                WORKLOAD_NAMES.iter().map(|s| s.to_string()).collect()
            } else {
                aa.workloads.clone()
            };
            if !aa.json {
                writeln!(out, "{}", audit_header()).map_err(io)?;
            }
            let mut failed = 0usize;
            let mut reports = Vec::new();
            for name in &names {
                let r = hintm_audit::audit_workload(name, aa.scale, aa.seed)
                    .ok_or_else(|| CliError(format!("unknown workload `{name}`")))?;
                if aa.json {
                    reports.push(audit_report_to_json(&r));
                } else {
                    writeln!(out, "{}", audit_row(&r)).map_err(io)?;
                    audit_details(&r, out).map_err(io)?;
                }
                if !r.passed() {
                    failed += 1;
                }
            }
            if aa.json {
                writeln!(out, "{}", Json::Arr(reports)).map_err(io)?;
            }
            if failed > 0 {
                return Err(CliError(format!("{failed} workload(s) failed the audit")));
            }
            Ok(())
        }
        Command::Analyze(na) => {
            let names: Vec<String> = if na.workloads.is_empty() {
                WORKLOAD_NAMES.iter().map(|s| s.to_string()).collect()
            } else {
                na.workloads.clone()
            };
            if !na.json {
                writeln!(out, "{}", analyze_header()).map_err(io)?;
            }
            let mut failed = 0usize;
            let mut reports = Vec::new();
            for name in &names {
                let r = hintm_audit::analyze_workload(name, na.scale)
                    .ok_or_else(|| CliError(format!("unknown workload `{name}`")))?;
                if na.json {
                    reports.push(analyze_report_to_json(&r));
                } else {
                    writeln!(out, "{}", analyze_row(&r)).map_err(io)?;
                    analyze_details(&r, out).map_err(io)?;
                }
                if !r.passed() {
                    failed += 1;
                }
            }
            if na.json {
                writeln!(out, "{}", Json::Arr(reports)).map_err(io)?;
            }
            if failed > 0 {
                return Err(CliError(format!(
                    "{failed} workload(s) failed the static analysis"
                )));
            }
            Ok(())
        }
        Command::Suite(ra) => {
            if ra.csv {
                writeln!(out, "{CSV_HEADER}").map_err(io)?;
            }
            for name in WORKLOAD_NAMES {
                let r = run_one(name, ra)?;
                if ra.csv {
                    writeln!(out, "{}", csv_row(&r, ra.seed)).map_err(io)?;
                } else {
                    writeln!(out, "{r}").map_err(io)?;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_list_and_help() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_full_run_command() {
        let cmd = parse(&argv(
            "run --workload vacation --htm l1tm --hints full --seed 7 --scale large \
             --threads 16 --smt2 --preserve --csv",
        ))
        .unwrap();
        let Command::Run(ra) = cmd else {
            panic!("expected run")
        };
        assert_eq!(ra.workload.as_deref(), Some("vacation"));
        assert_eq!(ra.htm, HtmKind::L1Tm);
        assert_eq!(ra.hints, HintMode::Full);
        assert_eq!(ra.seed, 7);
        assert_eq!(ra.scale, Scale::Large);
        assert_eq!(ra.threads, Some(16));
        assert!(ra.smt2 && ra.preserve && ra.csv);
    }

    #[test]
    fn run_requires_workload() {
        assert!(parse(&argv("run --htm p8")).is_err());
    }

    #[test]
    fn parses_sim_threads_everywhere() {
        let Command::Run(ra) = parse(&argv("run --workload kmeans --sim-threads 4")).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(ra.sim_threads, 4);
        let Command::Trace(ta) = parse(&argv("trace kmeans --sim-threads 2")).unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(ta.run.sim_threads, 2);
        let Command::Sweep(sa) = parse(&argv("sweep --sim-threads 8")).unwrap() else {
            panic!("expected sweep")
        };
        assert_eq!(sa.sim_threads, 8);
        let Command::Perf(pa) = parse(&argv("perf --threads 2")).unwrap() else {
            panic!("expected perf")
        };
        assert_eq!(pa.threads, 2);
        // Defaults are serial; zero and garbage are rejected.
        assert_eq!(RunArgs::default().sim_threads, 1);
        assert_eq!(PerfArgs::default().threads, 1);
        assert!(parse(&argv("run --workload kmeans --sim-threads 0")).is_err());
        assert!(parse(&argv("sweep --sim-threads nope")).is_err());
        assert!(parse(&argv("perf --threads 0")).is_err());
    }

    #[test]
    fn parses_exec_everywhere() {
        let Command::Run(ra) = parse(&argv("run --workload kmeans --exec compiled")).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(ra.exec, ExecMode::Compiled);
        let Command::Trace(ta) = parse(&argv("trace kmeans --exec both")).unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(ta.run.exec, ExecMode::Both);
        let Command::Sweep(sa) = parse(&argv("sweep --exec compiled")).unwrap() else {
            panic!("expected sweep")
        };
        assert_eq!(sa.exec, ExecMode::Compiled);
        let Command::Perf(pa) = parse(&argv("perf --exec compiled")).unwrap() else {
            panic!("expected perf")
        };
        assert_eq!(pa.exec, ExecMode::Compiled);
        // Defaults interpret; case-insensitive; garbage is rejected.
        assert_eq!(RunArgs::default().exec, ExecMode::Interp);
        assert_eq!(PerfArgs::default().exec, ExecMode::Interp);
        assert_eq!(parse_exec("BOTH").unwrap(), ExecMode::Both);
        assert!(parse(&argv("run --workload kmeans --exec jit")).is_err());
        assert!(parse(&argv("suite --exec")).is_err());
    }

    #[test]
    fn rejects_unknown_values() {
        assert!(parse(&argv("run --workload x --htm weird")).is_err());
        assert!(parse(&argv("run --workload x --hints weird")).is_err());
        assert!(parse(&argv("run --workload x --seed nope")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --workload")).is_err());
    }

    #[test]
    fn hint_aliases() {
        assert_eq!(parse_hints("st").unwrap(), HintMode::Static);
        assert_eq!(parse_hints("dyn").unwrap(), HintMode::Dynamic);
    }

    #[test]
    fn parses_capacity_model_names() {
        assert_eq!(parse_htm("lrws").unwrap(), HtmKind::Lrws);
        assert_eq!(parse_htm("PStretch").unwrap(), HtmKind::PStretch);
        let Command::Run(ra) = parse(&argv("run --workload kmeans --htm pstretch")).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(ra.htm, HtmKind::PStretch);
    }

    #[test]
    fn parses_alloc_color_everywhere() {
        let Command::Run(ra) = parse(&argv("run --workload kmeans --alloc-color 64")).unwrap()
        else {
            panic!("expected run")
        };
        assert_eq!(ra.alloc_color, 64);
        let Command::Trace(ta) = parse(&argv("trace kmeans --alloc-color 128")).unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(ta.run.alloc_color, 128);
        let Command::Sweep(sa) = parse(&argv("sweep --alloc-colors 0,64,128")).unwrap() else {
            panic!("expected sweep")
        };
        assert_eq!(sa.alloc_colors, vec![0, 64, 128]);
        // Defaults keep the packed layout; garbage is rejected.
        assert_eq!(RunArgs::default().alloc_color, 0);
        assert!(SweepArgs::default().alloc_colors.is_empty());
        assert!(parse(&argv("run --workload kmeans --alloc-color nope")).is_err());
    }

    #[test]
    fn sweep_models_alias_and_smoke() {
        let Command::Sweep(sa) = parse(&argv("sweep --models lrws,pstretch --smoke")).unwrap()
        else {
            panic!("expected sweep")
        };
        assert_eq!(sa.htms, vec![HtmKind::Lrws, HtmKind::PStretch]);
        assert!(sa.smoke);
        let Command::Sweep(sa) = parse(&argv("sweep --htm p8")).unwrap() else {
            panic!("expected sweep")
        };
        assert_eq!(sa.htms, vec![HtmKind::P8]);
        assert!(!sa.smoke);
    }

    #[test]
    fn executes_list() {
        let mut buf = Vec::new();
        execute(&Command::List, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("vacation"));
        assert_eq!(s.lines().count(), WORKLOAD_NAMES.len());
    }

    #[test]
    fn executes_run_csv() {
        let cmd = parse(&argv("run --workload kmeans --csv --seed 3")).unwrap();
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("kmeans,P8,baseline,3,"));
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
    }

    #[test]
    fn exec_tiers_agree_end_to_end() {
        let mut outs = Vec::new();
        for exec in ["interp", "compiled", "both"] {
            let cmd = parse(&argv(&format!("run --workload kmeans --csv --exec {exec}"))).unwrap();
            let mut buf = Vec::new();
            execute(&cmd, &mut buf).unwrap();
            outs.push(String::from_utf8(buf).unwrap());
        }
        assert_eq!(outs[0], outs[1], "interp vs compiled reports differ");
        assert_eq!(outs[0], outs[2], "interp vs both reports differ");
    }

    #[test]
    fn parses_audit_command() {
        assert_eq!(
            parse(&argv("audit")).unwrap(),
            Command::Audit(AuditArgs::default())
        );
        assert_eq!(
            parse(&argv("audit --all")).unwrap(),
            Command::Audit(AuditArgs::default())
        );
        let Command::Audit(aa) = parse(&argv(
            "audit --workloads kmeans,ssca2 --seed 7 --scale large",
        ))
        .unwrap() else {
            panic!("expected audit")
        };
        assert_eq!(aa.workloads, vec!["kmeans", "ssca2"]);
        assert_eq!(aa.seed, 7);
        assert_eq!(aa.scale, Scale::Large);
        assert!(parse(&argv("audit --all --workloads kmeans")).is_err());
        assert!(parse(&argv("audit --seed nope")).is_err());
        assert!(parse(&argv("audit --frobnicate")).is_err());
    }

    #[test]
    fn executes_audit_on_one_workload() {
        let cmd = parse(&argv("audit --workloads kmeans")).unwrap();
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with(&audit_header()));
        assert!(s.contains("kmeans"));
        assert!(s.contains("PASS"), "kmeans hints must audit clean:\n{s}");
    }

    #[test]
    fn parses_analyze_command() {
        assert_eq!(
            parse(&argv("analyze")).unwrap(),
            Command::Analyze(AnalyzeArgs::default())
        );
        assert_eq!(
            parse(&argv("analyze --all")).unwrap(),
            Command::Analyze(AnalyzeArgs::default())
        );
        let Command::Analyze(na) = parse(&argv("analyze kmeans ssca2 --scale large")).unwrap()
        else {
            panic!("expected analyze")
        };
        assert_eq!(na.workloads, vec!["kmeans", "ssca2"]);
        assert_eq!(na.scale, Scale::Large);
        assert!(!na.json);
        let Command::Analyze(na) =
            parse(&argv("analyze --workloads tpcc-no,tpcc-p --json")).unwrap()
        else {
            panic!("expected analyze")
        };
        assert_eq!(na.workloads, vec!["tpcc-no", "tpcc-p"]);
        assert!(na.json);
        assert!(parse(&argv("analyze --all kmeans")).is_err());
        assert!(parse(&argv("analyze --scale weird")).is_err());
        assert!(parse(&argv("analyze --frobnicate")).is_err());
    }

    #[test]
    fn executes_analyze_on_one_workload() {
        let cmd = parse(&argv("analyze kmeans")).unwrap();
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with(&analyze_header()));
        assert!(s.contains("kmeans"));
        assert!(s.contains("PASS"), "kmeans must analyze clean:\n{s}");
        assert!(s.contains("fits"), "kmeans fits every model:\n{s}");
    }

    #[test]
    fn executes_analyze_json() {
        let cmd = parse(&argv("analyze kmeans labyrinth --json")).unwrap();
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let j = Json::parse(&s).expect("analyze --json emits valid JSON");
        let Json::Arr(reports) = j else {
            panic!("expected a JSON array")
        };
        assert_eq!(reports.len(), 2);
        assert!(s.contains("\"must-overflow\""), "{s}");
        assert!(s.contains("\"fits\""), "{s}");
        assert!(s.contains("\"histogram\""), "{s}");
    }

    #[test]
    fn executes_audit_json() {
        let cmd = parse(&argv("audit --workloads kmeans --json")).unwrap();
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let j = Json::parse(&s).expect("audit --json emits valid JSON");
        let Json::Arr(reports) = j else {
            panic!("expected a JSON array")
        };
        assert_eq!(reports.len(), 1);
        assert!(s.contains("\"unsound\""), "{s}");
    }

    #[test]
    fn analyze_reports_unknown_workload() {
        let cmd = parse(&argv("analyze nope")).unwrap();
        let mut buf = Vec::new();
        let err = execute(&cmd, &mut buf).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn audit_reports_unknown_workload() {
        let cmd = parse(&argv("audit --workloads nope")).unwrap();
        let mut buf = Vec::new();
        let err = execute(&cmd, &mut buf).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn parses_trace_command() {
        let Command::Trace(ta) = parse(&argv(
            "trace vacation --htm l1tm --seed 7 --events 512 --out /tmp/t",
        ))
        .unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(ta.run.workload.as_deref(), Some("vacation"));
        assert_eq!(ta.run.htm, HtmKind::L1Tm);
        assert_eq!(ta.run.seed, 7);
        assert_eq!(ta.events, 512);
        assert_eq!(ta.out.as_deref(), Some("/tmp/t"));

        // --workload spelling works too; defaults hold.
        let Command::Trace(ta) = parse(&argv("trace --workload kmeans")).unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(ta.run.workload.as_deref(), Some("kmeans"));
        assert_eq!(ta.events, 100_000);
        assert_eq!(ta.out, None);

        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("trace kmeans --events nope")).is_err());
        assert!(parse(&argv("trace kmeans extra")).is_err());
    }

    #[test]
    fn executes_trace_and_exports_artifacts() {
        let dir = std::env::temp_dir().join("hintm-cli-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = parse(&argv(&format!(
            "trace kmeans --seed 3 --events 64 --out {}",
            dir.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("trace:"), "{s}");
        assert!(s.contains("digest"), "{s}");
        let json = std::fs::read_to_string(dir.join("kmeans.trace.json")).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        let bin = std::fs::read(dir.join("kmeans.trace.bin")).unwrap();
        assert_eq!(&bin[..4], b"HTRC");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parses_full_sweep_command() {
        let cmd = parse(&argv(
            "sweep --workloads vacation,labyrinth --htm p8,infcap --hints off,full \
             --seeds 1,2,3 --scale large --threads 16 --smt2 --preserve --jobs 8 \
             --cache-dir /tmp/c --out /tmp/o --csv --audit --analyze --trace",
        ))
        .unwrap();
        let Command::Sweep(sa) = cmd else {
            panic!("expected sweep")
        };
        assert!(sa.trace && sa.analyze);
        assert_eq!(sa.workloads, vec!["vacation", "labyrinth"]);
        assert_eq!(sa.htms, vec![HtmKind::P8, HtmKind::InfCap]);
        assert_eq!(sa.hints, vec![HintMode::Off, HintMode::Full]);
        assert_eq!(sa.seeds, vec![1, 2, 3]);
        assert_eq!(sa.scale, Scale::Large);
        assert_eq!(sa.threads, Some(16));
        assert_eq!(sa.jobs, Some(8));
        assert!(sa.smt2 && sa.preserve && sa.csv && sa.audit);
        assert_eq!(sa.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(sa.out.as_deref(), Some("/tmp/o"));
        assert!(!sa.no_cache && !sa.resume);
    }

    #[test]
    fn sweep_defaults_are_empty_axes() {
        let Command::Sweep(sa) = parse(&argv("sweep")).unwrap() else {
            panic!()
        };
        assert_eq!(sa, SweepArgs::default());
    }

    #[test]
    fn sweep_rejects_bad_input() {
        assert!(parse(&argv("sweep --htm p8,weird")).is_err());
        assert!(parse(&argv("sweep --seeds 1,x")).is_err());
        assert!(parse(&argv("sweep --jobs nope")).is_err());
        assert!(parse(&argv("sweep --frobnicate")).is_err());
        assert!(parse(&argv("sweep --no-cache --resume")).is_err());
    }

    #[test]
    fn parses_perf_command() {
        assert_eq!(
            parse(&argv("perf")).unwrap(),
            Command::Perf(PerfArgs::default())
        );
        let Command::Perf(pa) = parse(&argv(
            "perf --smoke --repeat 3 --warmup 0 --out bench --baseline BENCH_x.json \
             --threshold 0.1 --no-compare",
        ))
        .unwrap() else {
            panic!("expected perf")
        };
        assert!(pa.smoke && pa.no_compare);
        assert_eq!(pa.repeat, 3);
        assert_eq!(pa.warmup, 0);
        assert_eq!(pa.out.as_deref(), Some("bench"));
        assert_eq!(pa.baseline.as_deref(), Some("BENCH_x.json"));
        assert_eq!(pa.threshold, Some(0.1));
    }

    #[test]
    fn perf_rejects_bad_input() {
        assert!(parse(&argv("perf --repeat 0")).is_err());
        assert!(parse(&argv("perf --repeat nope")).is_err());
        assert!(parse(&argv("perf --threshold 1.5")).is_err());
        assert!(parse(&argv("perf --threshold -0.1")).is_err());
        assert!(parse(&argv("perf --frobnicate")).is_err());
        let mut buf = Vec::new();
        assert!(execute(&Command::Perf(PerfArgs::default()), &mut buf).is_err());
    }

    #[test]
    fn parses_cache_clear() {
        assert_eq!(
            parse(&argv("cache clear")).unwrap(),
            Command::CacheClear { dir: None }
        );
        assert_eq!(
            parse(&argv("cache clear --cache-dir /tmp/c")).unwrap(),
            Command::CacheClear {
                dir: Some("/tmp/c".into())
            }
        );
        assert!(parse(&argv("cache")).is_err());
        assert!(parse(&argv("cache nuke")).is_err());
    }

    #[test]
    fn parses_cache_stats() {
        assert_eq!(
            parse(&argv("cache stats")).unwrap(),
            Command::CacheStats { dir: None }
        );
        assert_eq!(
            parse(&argv("cache stats --cache-dir /tmp/c")).unwrap(),
            Command::CacheStats {
                dir: Some("/tmp/c".into())
            }
        );
        assert!(parse(&argv("cache stats --frobnicate")).is_err());
    }

    #[test]
    fn parses_serve_command() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve(ServeArgs::default())
        );
        let Command::Serve(sa) = parse(&argv(
            "serve --addr 0.0.0.0:9000 --workers 4 --cache-dir /tmp/c",
        ))
        .unwrap() else {
            panic!("expected serve")
        };
        assert_eq!(sa.addr, "0.0.0.0:9000");
        assert_eq!(sa.workers, Some(4));
        assert_eq!(sa.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(sa.join, None);

        let Command::Serve(sa) = parse(&argv("serve --join 10.0.0.1:8191 --workers 2")).unwrap()
        else {
            panic!("expected serve")
        };
        assert_eq!(sa.join.as_deref(), Some("10.0.0.1:8191"));
        assert_eq!(sa.workers, Some(2));

        assert!(parse(&argv("serve --workers nope")).is_err());
        assert!(parse(&argv("serve --join 10.0.0.1:8191 --workers 0")).is_err());
        assert!(parse(&argv("serve --frobnicate")).is_err());
    }

    #[test]
    fn scale_round_trips_through_names() {
        for s in [Scale::Sim, Scale::Large] {
            assert_eq!(parse_scale(scale_str(s)).unwrap(), s);
        }
    }

    #[test]
    fn execute_defers_runner_commands() {
        let mut buf = Vec::new();
        let err = execute(&Command::Sweep(SweepArgs::default()), &mut buf).unwrap_err();
        assert!(err.to_string().contains("hintm-serve"));
        assert!(execute(&Command::CacheClear { dir: None }, &mut buf).is_err());
        assert!(execute(&Command::CacheStats { dir: None }, &mut buf).is_err());
        assert!(execute(&Command::Serve(ServeArgs::default()), &mut buf).is_err());
    }

    #[test]
    fn run_reports_unknown_workload() {
        let cmd = parse(&argv("run --workload nope")).unwrap();
        let mut buf = Vec::new();
        let err = execute(&cmd, &mut buf).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
