//! Hand-rolled JSON serialization for run results (std-only).
//!
//! The sweep runner's on-disk result cache and artifact tables need a
//! stable, dependency-free wire format for [`RunReport`]/[`RunStats`]. This
//! module provides a tiny JSON value model with a writer and a
//! recursive-descent parser, plus `to_json`/`from_json` on the report
//! types. Numbers are kept as raw token strings inside [`Json`] so `u64`
//! counters round-trip exactly (no detour through `f64`), and floats are
//! written with Rust's shortest-round-trip formatting, so a
//! serialize→parse cycle is bit-identical.
//!
//! # Examples
//!
//! ```
//! use hintm::Experiment;
//!
//! let r = Experiment::new("kmeans").run()?;
//! let json = r.to_json();
//! let back = hintm::RunReport::from_json(&json).unwrap();
//! assert_eq!(back.to_json(), json);
//! # Ok::<(), hintm::UnknownWorkload>(())
//! ```

use crate::{HintMode, HtmKind, RunReport, RunStats};
use hintm_audit::{AnalyzeReport, AuditReport, Diagnostic};
use hintm_ir::{Bound, CapacityModel};
use hintm_trace::{HistSummary, TraceSummary};
use std::fmt;

/// A JSON serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

/// A parsed JSON value. Numbers keep their raw token text so integer
/// precision is never lost.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number value from a `u64`.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Builds a number value from an `f64` (shortest round-trip form).
    pub fn f64(v: f64) -> Json {
        Json::Num(format!("{v:?}"))
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a key, erroring with the key name when missing.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// This value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(s) => s
                .parse()
                .map_err(|_| JsonError(format!("not a u64: `{s}`"))),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// This value as an `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(s) => s
                .parse()
                .map_err(|_| JsonError(format!("not an f64: `{s}`"))),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// Parses a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(s) => write!(f, "{s}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if tok.is_empty() || tok == "-" {
            return err(format!("bad number at byte {start}"));
        }
        Ok(Json::Num(tok.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| JsonError("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| JsonError("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

fn u64_arr(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::u64(v)).collect())
}

fn u32_arr(values: &[u32]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::u64(v as u64)).collect())
}

fn parse_u64_arr<const N: usize>(j: &Json, key: &str) -> Result<[u64; N], JsonError> {
    let items = j.field(key)?.as_arr()?;
    if items.len() != N {
        return err(format!("`{key}` expected {N} entries, got {}", items.len()));
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_u64()?;
    }
    Ok(out)
}

fn parse_u32_vec(j: &Json, key: &str) -> Result<Vec<u32>, JsonError> {
    j.field(key)?
        .as_arr()?
        .iter()
        .map(|v| {
            let n = v.as_u64()?;
            u32::try_from(n).map_err(|_| JsonError(format!("`{key}` entry {n} overflows u32")))
        })
        .collect()
}

fn htm_from_str(s: &str) -> Result<HtmKind, JsonError> {
    match s {
        "P8" => Ok(HtmKind::P8),
        "P8S" => Ok(HtmKind::P8S),
        "L1TM" => Ok(HtmKind::L1Tm),
        "InfCap" => Ok(HtmKind::InfCap),
        "ROT" => Ok(HtmKind::Rot),
        "LogTM" => Ok(HtmKind::LogTm),
        "LRWS" => Ok(HtmKind::Lrws),
        "PStretch" => Ok(HtmKind::PStretch),
        other => err(format!("unknown htm kind `{other}`")),
    }
}

fn hint_from_str(s: &str) -> Result<HintMode, JsonError> {
    match s {
        "baseline" => Ok(HintMode::Off),
        "HinTM-st" => Ok(HintMode::Static),
        "HinTM-dyn" => Ok(HintMode::Dynamic),
        "HinTM" => Ok(HintMode::Full),
        other => err(format!("unknown hint mode `{other}`")),
    }
}

/// Serializes run statistics to a JSON value (exact round trip via
/// [`run_stats_from_json`]).
pub fn run_stats_to_json(stats: &RunStats) -> Json {
    let self_ = stats;
    {
        let mut fields = vec![
            ("total_cycles".into(), Json::u64(self_.total_cycles.raw())),
            ("sum_cycles".into(), Json::u64(self_.sum_cycles.raw())),
            ("commits".into(), Json::u64(self_.commits)),
            ("fallback_commits".into(), Json::u64(self_.fallback_commits)),
            ("aborts".into(), u64_arr(&self_.aborts)),
            ("wasted_cycles".into(), u64_arr(&self_.wasted_cycles)),
            ("page_mode_cycles".into(), Json::u64(self_.page_mode_cycles)),
            ("access_breakdown".into(), u64_arr(&self_.access_breakdown)),
            ("tx_sizes_all".into(), u32_arr(&self_.tx_sizes_all)),
            (
                "tx_sizes_nonstatic".into(),
                u32_arr(&self_.tx_sizes_nonstatic),
            ),
            ("tx_sizes_unsafe".into(), u32_arr(&self_.tx_sizes_unsafe)),
            (
                "vm".into(),
                Json::Obj(vec![
                    ("page_walks".into(), Json::u64(self_.vm.page_walks)),
                    ("minor_faults".into(), Json::u64(self_.vm.minor_faults)),
                    ("shootdowns".into(), Json::u64(self_.vm.shootdowns)),
                    ("downgrades".into(), Json::u64(self_.vm.downgrades)),
                    ("safe_loads".into(), Json::u64(self_.vm.safe_loads)),
                    ("unsafe_loads".into(), Json::u64(self_.vm.unsafe_loads)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("accesses".into(), Json::u64(self_.cache.accesses)),
                    ("l1_hits".into(), Json::u64(self_.cache.l1_hits)),
                    ("l2_hits".into(), Json::u64(self_.cache.l2_hits)),
                    (
                        "peer_transfers".into(),
                        Json::u64(self_.cache.peer_transfers),
                    ),
                    ("mem_fetches".into(), Json::u64(self_.cache.mem_fetches)),
                    ("upgrades".into(), Json::u64(self_.cache.upgrades)),
                ]),
            ),
            (
                "safe_pages".into(),
                u64_arr(&[self_.safe_pages.0, self_.safe_pages.1]),
            ),
            ("steps".into(), Json::u64(self_.steps)),
        ];
        if let Some((a, b, c, d)) = self_.sharing {
            fields.push((
                "sharing".into(),
                Json::Arr(vec![Json::f64(a), Json::f64(b), Json::f64(c), Json::f64(d)]),
            ));
        }
        Json::Obj(fields)
    }
}

/// Deserializes run statistics from a value produced by [`run_stats_to_json`].
///
/// # Errors
///
/// Returns [`JsonError`] on missing fields or type mismatches.
pub fn run_stats_from_json(j: &Json) -> Result<RunStats, JsonError> {
    {
        use hintm_types::Cycles;
        let vm = j.field("vm")?;
        let cache = j.field("cache")?;
        let safe_pages = parse_u64_arr::<2>(j, "safe_pages")?;
        let sharing = match j.get("sharing") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let items = v.as_arr()?;
                if items.len() != 4 {
                    return err("`sharing` expects 4 entries");
                }
                Some((
                    items[0].as_f64()?,
                    items[1].as_f64()?,
                    items[2].as_f64()?,
                    items[3].as_f64()?,
                ))
            }
        };
        Ok(RunStats {
            total_cycles: Cycles(j.field("total_cycles")?.as_u64()?),
            sum_cycles: Cycles(j.field("sum_cycles")?.as_u64()?),
            commits: j.field("commits")?.as_u64()?,
            fallback_commits: j.field("fallback_commits")?.as_u64()?,
            aborts: parse_u64_arr::<5>(j, "aborts")?,
            wasted_cycles: parse_u64_arr::<5>(j, "wasted_cycles")?,
            page_mode_cycles: j.field("page_mode_cycles")?.as_u64()?,
            access_breakdown: parse_u64_arr::<3>(j, "access_breakdown")?,
            tx_sizes_all: parse_u32_vec(j, "tx_sizes_all")?,
            tx_sizes_nonstatic: parse_u32_vec(j, "tx_sizes_nonstatic")?,
            tx_sizes_unsafe: parse_u32_vec(j, "tx_sizes_unsafe")?,
            vm: hintm_vm::VmStats {
                page_walks: vm.field("page_walks")?.as_u64()?,
                minor_faults: vm.field("minor_faults")?.as_u64()?,
                shootdowns: vm.field("shootdowns")?.as_u64()?,
                downgrades: vm.field("downgrades")?.as_u64()?,
                safe_loads: vm.field("safe_loads")?.as_u64()?,
                unsafe_loads: vm.field("unsafe_loads")?.as_u64()?,
            },
            cache: hintm_cache::CacheStats {
                accesses: cache.field("accesses")?.as_u64()?,
                l1_hits: cache.field("l1_hits")?.as_u64()?,
                l2_hits: cache.field("l2_hits")?.as_u64()?,
                peer_transfers: cache.field("peer_transfers")?.as_u64()?,
                mem_fetches: cache.field("mem_fetches")?.as_u64()?,
                upgrades: cache.field("upgrades")?.as_u64()?,
            },
            safe_pages: (safe_pages[0], safe_pages[1]),
            sharing,
            steps: j.field("steps")?.as_u64()?,
        })
    }
}

fn hist_to_json(h: &HistSummary) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::u64(h.count)),
        ("sum".into(), Json::u64(h.sum)),
        ("min".into(), Json::u64(h.min)),
        ("max".into(), Json::u64(h.max)),
    ])
}

fn hist_from_json(j: &Json, key: &str) -> Result<HistSummary, JsonError> {
    let h = j.field(key)?;
    Ok(HistSummary {
        count: h.field("count")?.as_u64()?,
        sum: h.field("sum")?.as_u64()?,
        min: h.field("min")?.as_u64()?,
        max: h.field("max")?.as_u64()?,
    })
}

/// Serializes a trace metric summary (the optional `trace` field of
/// [`RunReport::to_json`]).
pub fn trace_summary_to_json(t: &TraceSummary) -> Json {
    Json::Obj(vec![
        ("events".into(), Json::u64(t.events)),
        ("dropped".into(), Json::u64(t.dropped)),
        ("digest".into(), Json::u64(t.digest)),
        ("sections".into(), Json::u64(t.sections)),
        ("barriers".into(), Json::u64(t.barriers)),
        ("begins".into(), Json::u64(t.begins)),
        ("commits".into(), Json::u64(t.commits)),
        ("fallback_acquires".into(), Json::u64(t.fallback_acquires)),
        ("fallback_commits".into(), Json::u64(t.fallback_commits)),
        ("aborts".into(), u64_arr(&t.aborts)),
        ("lost_cycles".into(), u64_arr(&t.lost_cycles)),
        ("shootdowns".into(), Json::u64(t.shootdowns)),
        ("accesses".into(), Json::u64(t.accesses)),
        ("tx_accesses".into(), Json::u64(t.tx_accesses)),
        ("l1_evictions".into(), Json::u64(t.l1_evictions)),
        ("invalidations".into(), Json::u64(t.invalidations)),
        ("downgrades".into(), Json::u64(t.downgrades)),
        ("occupancy_hwm".into(), Json::u64(t.occupancy_hwm)),
        ("read_set".into(), hist_to_json(&t.read_set)),
        ("write_set".into(), hist_to_json(&t.write_set)),
        ("commit_footprint".into(), hist_to_json(&t.commit_footprint)),
        ("retries".into(), hist_to_json(&t.retries)),
    ])
}

/// Deserializes a trace metric summary written by [`trace_summary_to_json`].
///
/// # Errors
///
/// Returns [`JsonError`] on missing fields or type mismatches.
pub fn trace_summary_from_json(j: &Json) -> Result<TraceSummary, JsonError> {
    Ok(TraceSummary {
        events: j.field("events")?.as_u64()?,
        dropped: j.field("dropped")?.as_u64()?,
        digest: j.field("digest")?.as_u64()?,
        sections: j.field("sections")?.as_u64()?,
        barriers: j.field("barriers")?.as_u64()?,
        begins: j.field("begins")?.as_u64()?,
        commits: j.field("commits")?.as_u64()?,
        fallback_acquires: j.field("fallback_acquires")?.as_u64()?,
        fallback_commits: j.field("fallback_commits")?.as_u64()?,
        aborts: parse_u64_arr::<5>(j, "aborts")?,
        lost_cycles: parse_u64_arr::<5>(j, "lost_cycles")?,
        shootdowns: j.field("shootdowns")?.as_u64()?,
        accesses: j.field("accesses")?.as_u64()?,
        tx_accesses: j.field("tx_accesses")?.as_u64()?,
        l1_evictions: j.field("l1_evictions")?.as_u64()?,
        invalidations: j.field("invalidations")?.as_u64()?,
        downgrades: j.field("downgrades")?.as_u64()?,
        occupancy_hwm: j.field("occupancy_hwm")?.as_u64()?,
        read_set: hist_from_json(j, "read_set")?,
        write_set: hist_from_json(j, "write_set")?,
        commit_footprint: hist_from_json(j, "commit_footprint")?,
        retries: hist_from_json(j, "retries")?,
    })
}

impl RunReport {
    /// Serializes the full report to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Serializes to a JSON value.
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("workload".into(), Json::Str(self.workload.clone())),
            ("htm".into(), Json::Str(self.htm.to_string())),
            ("hint_mode".into(), Json::Str(self.hint_mode.to_string())),
            ("stats".into(), run_stats_to_json(&self.stats)),
        ];
        if let Some(t) = &self.trace {
            fields.push(("trace".into(), trace_summary_to_json(t)));
        }
        Json::Obj(fields)
    }

    /// Parses a report serialized with [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn from_json(input: &str) -> Result<RunReport, JsonError> {
        Self::from_json_value(&Json::parse(input)?)
    }

    /// Deserializes from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on missing fields or type mismatches.
    pub fn from_json_value(j: &Json) -> Result<RunReport, JsonError> {
        Ok(RunReport {
            workload: j.field("workload")?.as_str()?.to_string(),
            htm: htm_from_str(j.field("htm")?.as_str()?)?,
            hint_mode: hint_from_str(j.field("hint_mode")?.as_str()?)?,
            stats: run_stats_from_json(j.field("stats")?)?,
            trace: match j.get("trace") {
                None | Some(Json::Null) => None,
                Some(t) => Some(trace_summary_from_json(t)?),
            },
        })
    }
}

/// An upper [`Bound`] as JSON: the block count, or `null` for unbounded.
fn bound_to_json(b: Bound) -> Json {
    match b {
        Bound::Finite(n) => Json::u64(n),
        Bound::Unbounded => Json::Null,
    }
}

/// One lint [`Diagnostic`] as JSON (shared by the `analyze` and `audit`
/// reports).
fn diagnostic_to_json(d: &Diagnostic) -> Json {
    Json::Obj(vec![
        ("lint".into(), Json::Str(d.lint.to_string())),
        ("severity".into(), Json::Str(d.severity.to_string())),
        ("func".into(), Json::Str(d.func.clone())),
        (
            "site".into(),
            d.site.map_or(Json::Null, |s| Json::u64(s.0 as u64)),
        ),
        ("message".into(), Json::Str(d.message.clone())),
    ])
}

/// A site-id set as a JSON array of numbers.
fn sites_to_json(sites: &std::collections::BTreeSet<hintm_types::SiteId>) -> Json {
    Json::Arr(sites.iter().map(|s| Json::u64(s.0 as u64)).collect())
}

/// Serializes one [`AnalyzeReport`] to a JSON value: per-transaction
/// footprint bounds with per-model verdicts, the module-worst verdicts,
/// the predicted size histogram, the declared/inferred safe-site sets,
/// and every diagnostic.
pub fn analyze_report_to_json(r: &AnalyzeReport) -> Json {
    let txs = r
        .footprint
        .txs
        .iter()
        .zip(&r.tx_funcs)
        .map(|(tx, func)| {
            let verdicts = CapacityModel::ALL
                .iter()
                .map(|m| (m.name().to_string(), Json::Str(m.verdict(tx).to_string())))
                .collect();
            Json::Obj(vec![
                ("func".into(), Json::Str(func.clone())),
                ("index".into(), Json::u64(tx.index as u64)),
                ("read_hi".into(), bound_to_json(tx.read_hi)),
                ("write_hi".into(), bound_to_json(tx.write_hi)),
                ("total_hi".into(), bound_to_json(tx.total_hi)),
                ("total_lo".into(), Json::u64(tx.total_lo)),
                ("write_lo".into(), Json::u64(tx.write_lo)),
                ("balanced".into(), Json::Bool(tx.balanced)),
                ("verdicts".into(), Json::Obj(verdicts)),
            ])
        })
        .collect();
    let worst = CapacityModel::ALL
        .iter()
        .map(|m| {
            (
                m.name().to_string(),
                Json::Str(r.footprint.worst(*m).to_string()),
            )
        })
        .collect();
    let histogram = r
        .footprint
        .size_histogram()
        .into_iter()
        .map(|(label, n)| (label.to_string(), Json::u64(n as u64)))
        .collect();
    Json::Obj(vec![
        ("workload".into(), Json::Str(r.workload.clone())),
        ("passed".into(), Json::Bool(r.passed())),
        ("txs".into(), Json::Arr(txs)),
        ("worst".into(), Json::Obj(worst)),
        ("histogram".into(), Json::Obj(histogram)),
        ("declared_safe".into(), sites_to_json(&r.declared)),
        ("inferred_safe".into(), sites_to_json(&r.inferred)),
        (
            "verify_errors".into(),
            Json::Arr(
                r.verify_errors
                    .iter()
                    .map(|e| Json::Str(e.to_string()))
                    .collect(),
            ),
        ),
        (
            "diagnostics".into(),
            Json::Arr(r.diagnostics.iter().map(diagnostic_to_json).collect()),
        ),
    ])
}

/// Serializes one [`AuditReport`] to a JSON value, sharing the diagnostic
/// encoding with [`analyze_report_to_json`].
pub fn audit_report_to_json(r: &AuditReport) -> Json {
    let unsound = r
        .unsound
        .iter()
        .map(|u| {
            Json::Obj(vec![
                ("site".into(), Json::u64(u.site.0 as u64)),
                ("kind".into(), Json::Str(format!("{:?}", u.kind))),
                ("addr".into(), Json::u64(u.addr.raw())),
                ("thread".into(), Json::u64(u.thread.0 as u64)),
                ("epoch".into(), Json::u64(u.epoch as u64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("workload".into(), Json::Str(r.workload.clone())),
        ("passed".into(), Json::Bool(r.passed())),
        ("num_sites".into(), Json::u64(r.stats.num_sites as u64)),
        ("safe_loads".into(), Json::u64(r.stats.safe_loads as u64)),
        ("safe_stores".into(), Json::u64(r.stats.safe_stores as u64)),
        (
            "replicated_funcs".into(),
            Json::u64(r.stats.replicated_funcs as u64),
        ),
        ("hint_mismatch".into(), Json::Bool(r.hint_mismatch)),
        ("sites_executed".into(), Json::u64(r.sites_executed as u64)),
        ("addrs_touched".into(), Json::u64(r.addrs_touched as u64)),
        ("unsound".into(), Json::Arr(unsound)),
        (
            "missed".into(),
            Json::Arr(r.missed.iter().map(|s| Json::u64(s.0 as u64)).collect()),
        ),
        (
            "verify_errors".into(),
            Json::Arr(
                r.verify_errors
                    .iter()
                    .map(|e| Json::Str(e.to_string()))
                    .collect(),
            ),
        ),
        (
            "diagnostics".into(),
            Json::Arr(r.diagnostics.iter().map(diagnostic_to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Experiment;

    #[test]
    fn parser_handles_scalars_and_nesting() {
        let j = Json::parse(r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null,"e":{}}"#).unwrap();
        assert_eq!(j.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(j.field("b").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(j.field("c").unwrap(), &Json::Bool(true));
        assert_eq!(j.field("d").unwrap(), &Json::Null);
        assert!(j.field("missing").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
    }

    #[test]
    fn strings_round_trip_through_escapes() {
        let s = "quote\" slash\\ newline\n tab\t unicode→";
        let rendered = Json::Str(s.into()).to_string();
        assert_eq!(Json::parse(&rendered).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 3;
        let j = Json::parse(&Json::u64(big).to_string()).unwrap();
        assert_eq!(j.as_u64().unwrap(), big);
    }

    #[test]
    fn report_round_trips_bit_identically() {
        // A profiled run exercises the optional `sharing` tuple and the
        // tx-size vectors; full hints exercise the vm counters.
        let r = Experiment::new("kmeans")
            .hint_mode(crate::HintMode::Full)
            .record_tx_sizes(true)
            .profile_sharing(true)
            .run()
            .expect("runs");
        let json = r.to_json();
        let back = RunReport::from_json(&json).expect("parses");
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.htm, r.htm);
        assert_eq!(back.hint_mode, r.hint_mode);
        assert_eq!(back.stats.total_cycles, r.stats.total_cycles);
        assert_eq!(back.stats.aborts, r.stats.aborts);
        assert_eq!(back.stats.tx_sizes_all, r.stats.tx_sizes_all);
        assert_eq!(back.stats.sharing, r.stats.sharing);
        // Full fidelity: a second serialization is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn report_without_sharing_round_trips() {
        let r = Experiment::new("ssca2").run().expect("runs");
        assert!(r.stats.sharing.is_none());
        let back = RunReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.stats.sharing, None);
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn traced_report_round_trips() {
        let (r, rec) = Experiment::new("kmeans").run_traced(256).expect("runs");
        let t = r.trace.expect("traced run embeds a summary");
        assert_eq!(t.digest, rec.digest());
        let back = RunReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.trace, Some(t));
        assert_eq!(back.to_json(), r.to_json());
        // An untraced report omits the field entirely.
        let plain = Experiment::new("kmeans").run().unwrap();
        assert!(!plain.to_json().contains("\"trace\""));
        assert!(RunReport::from_json(&plain.to_json())
            .unwrap()
            .trace
            .is_none());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(RunReport::from_json("not json").is_err());
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json(
            r#"{"workload":"x","htm":"Weird","hint_mode":"baseline","stats":{}}"#
        )
        .is_err());
    }
}
