//! Ablation (§VII) — encoding static hints as suspend/resume escape windows
//! instead of safe-access opcodes. The paper argues the two are equivalent
//! for *static* classification (and that neither can express the dynamic
//! mechanism); this harness checks that claim executably.

use hintm::{AbortKind, HintMode, HtmKind, SimConfig, Simulator};
use hintm_bench::{banner, print_machine, x, SEED};
use hintm_sim::EscapeEncoded;
use hintm_workloads::{by_name, Scale};

fn main() {
    banner(
        "Ablation: safe-access opcodes vs suspend/resume escape windows",
        "static classification delivered two ways; dynamic hints disabled in both",
    );
    print_machine();
    println!(
        "{:<10} | {:>10} {:>10} {:>10} | {:>9} {:>9}",
        "workload", "cap(base)", "cap(st)", "cap(esc)", "sp-st", "sp-esc"
    );
    for name in ["bayes", "labyrinth", "vacation", "tpcc-no", "tpcc-p"] {
        let run = |hint, escape: bool| {
            let mut w: Box<dyn hintm::Workload> = if escape {
                Box::new(EscapeEncoded::new(by_name(name, Scale::Sim).unwrap()))
            } else {
                by_name(name, Scale::Sim).unwrap()
            };
            Simulator::new(SimConfig::with_htm(HtmKind::P8).hint_mode(hint)).run(w.as_mut(), SEED)
        };
        let base = run(HintMode::Off, false);
        let st = run(HintMode::Static, false);
        // The escape encoding needs no hint support in the HTM at all.
        let esc = run(HintMode::Off, true);
        println!(
            "{:<10} | {:>10} {:>10} {:>10} | {:>9} {:>9}",
            name,
            base.aborts_of(AbortKind::Capacity),
            st.aborts_of(AbortKind::Capacity),
            esc.aborts_of(AbortKind::Capacity),
            x(base.total_cycles.raw() as f64 / st.total_cycles.raw().max(1) as f64),
            x(base.total_cycles.raw() as f64 / esc.total_cycles.raw().max(1) as f64),
        );
    }
    println!(
        "\nthe two columns should match closely: escape windows deliver the same\n\
         effective-capacity expansion on ISAs without safe-access opcodes, at the cost\n\
         of extra suspend/resume instructions (not modelled) and no dynamic channel"
    );
}
