//! §VI-B ablation — the "preserve" page-transition optimization on the
//! page-mode outlier, vacation: remote reads of `⟨private,rw⟩` pages
//! downgrade to `⟨shared,ro⟩` instead of shooting down, trading page-mode
//! aborts for continued safe reads.

use hintm::{AbortKind, Experiment, HintMode, HtmKind, Scale};
use hintm_bench::{banner, pct, print_machine, x, SEED};

fn run(name: &str, htm: HtmKind, preserve: bool) -> hintm::RunReport {
    Experiment::new(name)
        .htm(htm)
        .hint_mode(HintMode::Full)
        .preserve(preserve)
        .scale(Scale::Sim)
        .seed(SEED)
        .run()
        .unwrap()
}

fn main() {
    banner(
        "Ablation (§VI-B): page-mode abort cost and the preserve optimization",
        "vacation (the outlier) and two controls, HinTM full, with preserve off/on",
    );
    print_machine();
    println!(
        "{:<10} {:<6} | {:>10} {:>10} {:>10} {:>9}",
        "workload", "htm", "pgm-aborts", "pgm-frac", "shootdowns", "speedup"
    );
    for name in ["vacation", "genome", "tpcc-no"] {
        for htm in [HtmKind::P8, HtmKind::L1Tm] {
            let off = run(name, htm, false);
            let on = run(name, htm, true);
            println!(
                "{:<10} {:<6} | {:>4} -> {:>3} {:>10} {:>10} {:>9}",
                name,
                htm.to_string(),
                off.stats.aborts_of(AbortKind::PageMode),
                on.stats.aborts_of(AbortKind::PageMode),
                format!(
                    "{} -> {}",
                    pct(off.page_mode_fraction()),
                    pct(on.page_mode_fraction())
                ),
                format!("{} -> {}", off.stats.vm.shootdowns, on.stats.vm.shootdowns),
                x(on.speedup_vs(&off)),
            );
        }
    }
    println!();
    println!(
        "paper shape: vacation combines the highest page-mode abort frequency and cost;\n\
         gentler transition handling recoups part of its InfCap headroom (§VI-B, §VI-D2)"
    );
}
