//! Table I — HinTM's hardware additions, as implemented by this
//! reproduction (where each lives and what it costs).

use hintm_bench::banner;
use hintm_types::MachineConfig;

fn main() {
    banner(
        "Table I: HinTM's required hardware modifications",
        "and where this repo implements them",
    );
    let cfg = MachineConfig::default();
    println!(
        "Core           | safety-flag bit on load/store instructions (safe load/store\n\
         \u{20}              | opcodes)                     -> hintm_types::SafetyHint,\n\
         \u{20}              |                                  hintm_ir::classify (producer)\n\
         TLB            | +2 bits per entry (ro, shared) and tid per PT entry\n\
         \u{20}              |                               -> hintm_vm::PageState / Tlb\n\
         HTM controller | skip tracking for hinted accesses\n\
         \u{20}              |                               -> hintm_htm::HtmThread::on_access\n"
    );
    println!(
        "Cost model (§V): minor fault {} cyc; TLB shootdown {} cyc initiator / {} cyc per slave",
        cfg.minor_fault_cost.raw(),
        cfg.shootdown_initiator_cost.raw(),
        cfg.shootdown_slave_cost.raw()
    );
    println!("\n{}", cfg.table2_summary());
}
