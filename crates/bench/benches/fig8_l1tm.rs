//! Fig. 8 — HinTM on L1TM (in-L1 transactional tracking) with 2-way SMT,
//! larger inputs (§VI-D2). The shared 32 KiB L1 gives each hardware thread
//! roomier-but-contended tracking: capacity aborts now come from both
//! capacity and set-conflict misses, amplified by the SMT sibling.

use hintm::{AbortKind, Experiment, HintMode, HtmKind, Scale};
use hintm_bench::{banner, geomean, pct, print_machine, x, SEED};

const SUBSET: [&str; 8] =
    ["bayes", "genome", "intruder", "labyrinth", "vacation", "yada", "tpcc-no", "tpcc-p"];

fn run(name: &str, hint: HintMode, htm: HtmKind) -> hintm::RunReport {
    // 2-way SMT: double each workload's paper-default thread count.
    let threads = if matches!(name, "genome" | "yada") { 8 } else { 16 };
    Experiment::new(name)
        .htm(htm)
        .hint_mode(hint)
        .scale(Scale::Large)
        .threads(threads)
        .smt2(true)
        .seed(SEED)
        .run()
        .unwrap()
}

fn main() {
    banner(
        "Figure 8: HinTM on L1TM with 2-way SMT, larger inputs",
        "capacity-abort reduction and speedup vs baseline L1TM; InfCap as the bound",
    );
    print_machine();
    println!(
        "{:<10} | {:>9} {:>9} | {:>7} {:>7} {:>7} {:>7} | {:>8}",
        "workload", "capB", "capRed", "sp-st", "sp-dyn", "sp-full", "sp-inf", "pgmode"
    );

    let mut sp = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for name in SUBSET {
        let base = run(name, HintMode::Off, HtmKind::L1Tm);
        let st = run(name, HintMode::Static, HtmKind::L1Tm);
        let dy = run(name, HintMode::Dynamic, HtmKind::L1Tm);
        let full = run(name, HintMode::Full, HtmKind::L1Tm);
        let inf = run(name, HintMode::Off, HtmKind::InfCap);

        println!(
            "{:<10} | {:>9} {:>9} | {:>7} {:>7} {:>7} {:>7} | {:>8}",
            name,
            base.stats.aborts_of(AbortKind::Capacity),
            pct(full.capacity_abort_reduction_vs(&base)),
            x(st.speedup_vs(&base)),
            x(dy.speedup_vs(&base)),
            x(full.speedup_vs(&base)),
            x(inf.speedup_vs(&base)),
            pct(full.page_mode_fraction()),
        );
        sp[0].push(st.speedup_vs(&base));
        sp[1].push(dy.speedup_vs(&base));
        sp[2].push(full.speedup_vs(&base));
        sp[3].push(inf.speedup_vs(&base));
    }
    println!(
        "{:<10} | {:>19} | {:>7} {:>7} {:>7} {:>7} |",
        "GEOMEAN",
        "",
        x(geomean(&sp[0])),
        x(geomean(&sp[1])),
        x(geomean(&sp[2])),
        x(geomean(&sp[3])),
    );
    println!();
    println!(
        "paper shape: HinTM's best configuration — ~1.7x mean, up to 7.1x (labyrinth),\n\
         capacity aborts cut 29-100%; vacation's potential is eaten by page-mode costs"
    );
}
