//! Fig. 8 — HinTM on L1TM (in-L1 transactional tracking) with 2-way SMT,
//! larger inputs (§VI-D2). The shared 32 KiB L1 gives each hardware thread
//! roomier-but-contended tracking: capacity aborts now come from both
//! capacity and set-conflict misses, amplified by the SMT sibling.

use hintm::{AbortKind, HintMode, HtmKind, Scale};
use hintm_bench::{banner, geomean, pct, print_machine, run_cells, x, SEED};
use hintm_runner::Cell;

const SUBSET: [&str; 8] = [
    "bayes",
    "genome",
    "intruder",
    "labyrinth",
    "vacation",
    "yada",
    "tpcc-no",
    "tpcc-p",
];

const CFGS: [(HtmKind, HintMode); 5] = [
    (HtmKind::L1Tm, HintMode::Off),
    (HtmKind::L1Tm, HintMode::Static),
    (HtmKind::L1Tm, HintMode::Dynamic),
    (HtmKind::L1Tm, HintMode::Full),
    (HtmKind::InfCap, HintMode::Off),
];

fn fig8_cell(name: &str, htm: HtmKind, hint: HintMode) -> Cell {
    // 2-way SMT: double each workload's paper-default thread count.
    let threads = if matches!(name, "genome" | "yada") {
        8
    } else {
        16
    };
    Cell::new(name)
        .htm(htm)
        .hint(hint)
        .scale(Scale::Large)
        .threads(threads)
        .smt2(true)
        .seed(SEED)
}

fn main() {
    banner(
        "Figure 8: HinTM on L1TM with 2-way SMT, larger inputs",
        "capacity-abort reduction and speedup vs baseline L1TM; InfCap as the bound",
    );
    print_machine();
    println!(
        "{:<10} | {:>9} {:>9} | {:>7} {:>7} {:>7} {:>7} | {:>8}",
        "workload", "capB", "capRed", "sp-st", "sp-dyn", "sp-full", "sp-inf", "pgmode"
    );

    // One parallel (and cached) sweep over the figure's whole grid.
    let grid: Vec<_> = SUBSET
        .iter()
        .flat_map(|name| CFGS.iter().map(|&(htm, hint)| fig8_cell(name, htm, hint)))
        .collect();
    let results = run_cells(&grid);

    let mut sp = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for name in SUBSET {
        let get = |htm, hint| results.expect_report(&fig8_cell(name, htm, hint));
        let base = get(HtmKind::L1Tm, HintMode::Off);
        let st = get(HtmKind::L1Tm, HintMode::Static);
        let dy = get(HtmKind::L1Tm, HintMode::Dynamic);
        let full = get(HtmKind::L1Tm, HintMode::Full);
        let inf = get(HtmKind::InfCap, HintMode::Off);

        println!(
            "{:<10} | {:>9} {:>9} | {:>7} {:>7} {:>7} {:>7} | {:>8}",
            name,
            base.stats.aborts_of(AbortKind::Capacity),
            pct(full.capacity_abort_reduction_vs(base)),
            x(st.speedup_vs(base)),
            x(dy.speedup_vs(base)),
            x(full.speedup_vs(base)),
            x(inf.speedup_vs(base)),
            pct(full.page_mode_fraction()),
        );
        sp[0].push(st.speedup_vs(base));
        sp[1].push(dy.speedup_vs(base));
        sp[2].push(full.speedup_vs(base));
        sp[3].push(inf.speedup_vs(base));
    }
    println!(
        "{:<10} | {:>19} | {:>7} {:>7} {:>7} {:>7} |",
        "GEOMEAN",
        "",
        x(geomean(&sp[0])),
        x(geomean(&sp[1])),
        x(geomean(&sp[2])),
        x(geomean(&sp[3])),
    );
    println!();
    println!(
        "paper shape: HinTM's best configuration — ~1.7x mean, up to 7.1x (labyrinth),\n\
         capacity aborts cut 29-100%; vacation's potential is eaten by page-mode costs"
    );
}
