//! Methodology check — run-to-run variance: the headline speedups across
//! five seeds, reported as min/geomean/max. Narrow spreads justify quoting
//! single-seed numbers in EXPERIMENTS.md.

use hintm::{HintMode, HtmKind};
use hintm_bench::{banner, geomean, print_machine, run_cells};
use hintm_runner::Cell;

const SEEDS: [u64; 5] = [11, 42, 97, 1234, 31337];

fn vcell(name: &str, hint: HintMode, seed: u64) -> Cell {
    Cell::new(name).htm(HtmKind::P8).hint(hint).seed(seed)
}

fn main() {
    banner(
        "Variance check: HinTM speedup over baseline P8 across 5 seeds",
        "min / geomean / max per workload; spread = (max-min)/geomean",
    );
    print_machine();
    println!(
        "{:<10} {:>8} {:>9} {:>8} {:>9}",
        "workload", "min", "geomean", "max", "spread"
    );

    // One parallel (and cached) sweep: every workload, both hint modes,
    // all five seeds.
    let grid: Vec<Cell> = hintm::WORKLOAD_NAMES
        .iter()
        .flat_map(|name| {
            [HintMode::Off, HintMode::Full]
                .into_iter()
                .flat_map(move |hint| SEEDS.iter().map(move |&s| vcell(name, hint, s)))
        })
        .collect();
    let results = run_cells(&grid);

    for name in hintm::WORKLOAD_NAMES {
        let speedups: Vec<f64> = SEEDS
            .iter()
            .map(|&s| {
                let base = results.expect_report(&vcell(name, HintMode::Off, s));
                let hinted = results.expect_report(&vcell(name, HintMode::Full, s));
                hinted.speedup_vs(base)
            })
            .collect();
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let gm = geomean(&speedups);
        println!(
            "{:<10} {:>7.2}x {:>8.2}x {:>7.2}x {:>8.1}%",
            name,
            min,
            gm,
            max,
            if gm > 0.0 {
                100.0 * (max - min) / gm
            } else {
                0.0
            },
        );
    }
}
