//! Methodology check — run-to-run variance: the headline speedups across
//! five seeds, reported as min/geomean/max. Narrow spreads justify quoting
//! single-seed numbers in EXPERIMENTS.md.

use hintm::{Experiment, HintMode, HtmKind};
use hintm_bench::{banner, geomean, print_machine};

const SEEDS: [u64; 5] = [11, 42, 97, 1234, 31337];

fn main() {
    banner(
        "Variance check: HinTM speedup over baseline P8 across 5 seeds",
        "min / geomean / max per workload; spread = (max-min)/geomean",
    );
    print_machine();
    println!("{:<10} {:>8} {:>9} {:>8} {:>9}", "workload", "min", "geomean", "max", "spread");
    for name in hintm::WORKLOAD_NAMES {
        let bases = Experiment::new(name).htm(HtmKind::P8).run_seeds(&SEEDS).unwrap();
        let hinted = Experiment::new(name)
            .htm(HtmKind::P8)
            .hint_mode(HintMode::Full)
            .run_seeds(&SEEDS)
            .unwrap();
        let speedups: Vec<f64> =
            hinted.iter().zip(&bases).map(|(h, b)| h.speedup_vs(b)).collect();
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let gm = geomean(&speedups);
        println!(
            "{:<10} {:>7.2}x {:>8.2}x {:>7.2}x {:>8.1}%",
            name,
            min,
            gm,
            max,
            if gm > 0.0 { 100.0 * (max - min) / gm } else { 0.0 },
        );
    }
}
