//! Fig. 2 — the page state-transition diagram, demonstrated as an executed
//! trace: one page walked through its whole lifecycle by two threads, with
//! the classification verdict and cost of every step.

use hintm_bench::banner;
use hintm_types::{AccessKind, CoreId, MachineConfig, PageId, ThreadId};
use hintm_vm::VmSystem;

fn main() {
    banner(
        "Figure 2: page state transitions under the dynamic classifier",
        "an executed lifecycle trace (default mode, then preserve mode)",
    );
    for preserve in [false, true] {
        println!("--- preserve = {preserve} ---");
        let mut vm = VmSystem::new(&MachineConfig::default(), preserve);
        let page = PageId::from_index(42);
        let steps: [(&str, CoreId, ThreadId, AccessKind); 5] = [
            (
                "X reads (first touch)",
                CoreId(0),
                ThreadId(0),
                AccessKind::Load,
            ),
            ("X writes", CoreId(0), ThreadId(0), AccessKind::Store),
            ("Y reads", CoreId(1), ThreadId(1), AccessKind::Load),
            ("Y writes", CoreId(1), ThreadId(1), AccessKind::Store),
            ("X reads again", CoreId(0), ThreadId(0), AccessKind::Load),
        ];
        for (what, core, tid, kind) in steps {
            let r = vm.access(core, tid, page, kind);
            println!(
                "  {:<24} -> {:<16} safe-load={:<5} cost={:>5} shootdown={}",
                what,
                vm.page_state(page)
                    .map(|s| s.to_string())
                    .unwrap_or_default(),
                r.safe_load,
                r.cost.raw(),
                r.shootdown
                    .map(|s| format!("{} slaves", s.slave_cores.len()))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        println!();
    }
    println!(
        "matches Fig. 2: reads of <private,*> (by the owner) and <shared,ro> are safe;\n\
         the single safe->unsafe transition costs a shootdown (6600 + 1450/slave cycles)"
    );
}
