//! Fig. 4 — HinTM on the P8 HTM configuration.
//!
//! (a) capacity-abort reduction for HinTM-st / HinTM-dyn / HinTM vs. P8;
//! (b) speedup over baseline P8 (including the InfCap upper bound) and the
//!     fraction of cycles spent on page-mode abort actions.

use hintm::{AbortKind, HintMode, HtmKind, Scale, WORKLOAD_NAMES};
use hintm_bench::{banner, cell, geomean, pct, print_machine, run_cells, x};

fn main() {
    banner(
        "Figure 4: capacity-abort reduction and speedup on the P8 HTM",
        "(a) capacity-abort reduction; (b) speedup vs baseline P8 + page-mode cost",
    );
    print_machine();
    println!(
        "{:<10} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7} {:>7} | {:>8}",
        "workload",
        "red-st",
        "red-dyn",
        "red-full",
        "sp-st",
        "sp-dyn",
        "sp-full",
        "sp-inf",
        "pgmode"
    );

    // The figure's whole grid, executed as one parallel (and cached) sweep.
    const CFGS: [(HtmKind, HintMode); 5] = [
        (HtmKind::P8, HintMode::Off),
        (HtmKind::P8, HintMode::Static),
        (HtmKind::P8, HintMode::Dynamic),
        (HtmKind::P8, HintMode::Full),
        (HtmKind::InfCap, HintMode::Off),
    ];
    let grid: Vec<_> = WORKLOAD_NAMES
        .iter()
        .flat_map(|name| {
            CFGS.iter()
                .map(|&(htm, hint)| cell(name, htm, hint, Scale::Sim))
        })
        .collect();
    let results = run_cells(&grid);

    let mut sp = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut reds = [Vec::new(), Vec::new(), Vec::new()];
    for name in WORKLOAD_NAMES {
        let get = |htm, hint| results.expect_report(&cell(name, htm, hint, Scale::Sim));
        let base = get(HtmKind::P8, HintMode::Off);
        let st = get(HtmKind::P8, HintMode::Static);
        let dy = get(HtmKind::P8, HintMode::Dynamic);
        let full = get(HtmKind::P8, HintMode::Full);
        let inf = get(HtmKind::InfCap, HintMode::Off);

        let r = |a: &hintm::RunReport| a.capacity_abort_reduction_vs(base);
        let s = |a: &hintm::RunReport| a.speedup_vs(base);
        println!(
            "{:<10} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7} {:>7} | {:>8}",
            name,
            pct(r(st)),
            pct(r(dy)),
            pct(r(full)),
            x(s(st)),
            x(s(dy)),
            x(s(full)),
            x(s(inf)),
            pct(full.page_mode_fraction()),
        );
        let base_cap = base.stats.aborts_of(AbortKind::Capacity);
        if base_cap > 0 {
            reds[0].push(r(st));
            reds[1].push(r(dy));
            reds[2].push(r(full));
        }
        sp[0].push(s(st));
        sp[1].push(s(dy));
        sp[2].push(s(full));
        sp[3].push(s(inf));
    }
    println!(
        "{:<10} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7} {:>7} |",
        "MEAN",
        pct(hintm_bench::mean(&reds[0])),
        pct(hintm_bench::mean(&reds[1])),
        pct(hintm_bench::mean(&reds[2])),
        x(geomean(&sp[0])),
        x(geomean(&sp[1])),
        x(geomean(&sp[2])),
        x(geomean(&sp[3])),
    );
    println!();
    println!(
        "paper shape: HinTM removes ~64% of capacity aborts, 1.4x geomean speedup (up to\n\
         8.7x on labyrinth); HinTM-dyn ~61% / 1.34x; HinTM-st only helps labyrinth (~80%\n\
         reduction, ~3x) and vacation (~48%, 1.18x); InfCap bounds at 9.1x labyrinth, 1.6x vacation"
    );
}
