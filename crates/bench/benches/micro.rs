//! Criterion microbenchmarks of the core structures: hardware signature,
//! P8 transactional buffer, cache hierarchy, TLB/page walk, and treap ops.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hintm_htm::{Signature, Tracker};
use hintm_mem::ds::{SimTreap, TreapSites};
use hintm_mem::{AddressSpace, NullSink};
use hintm_types::{AccessKind, Addr, BlockAddr, CoreId, MachineConfig, SiteId, ThreadId};
use hintm_vm::VmSystem;

fn bench_signature(c: &mut Criterion) {
    c.bench_function("signature_insert_query", |b| {
        let mut sig = Signature::new(1024, 2);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            sig.insert(BlockAddr::from_index(i));
            black_box(sig.maybe_contains(BlockAddr::from_index(i ^ 0x5555)));
            if i.is_multiple_of(512) {
                sig.clear();
            }
        })
    });
}

fn bench_p8_buffer(c: &mut Criterion) {
    c.bench_function("p8_track_64", |b| {
        b.iter(|| {
            let mut t = Tracker::p8(64);
            for i in 0..64u64 {
                t.track(BlockAddr::from_index(i), i % 4 == 0).unwrap();
            }
            black_box(t.footprint())
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_stream", |b| {
        let mut h = hintm_cache::Hierarchy::new(&MachineConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let core = CoreId((i % 8) as u32);
            let blk = Addr::new((i * 64) % (1 << 22)).block();
            black_box(h.access(core, blk, if i.is_multiple_of(5) { AccessKind::Store } else { AccessKind::Load }).latency)
        })
    });
}

fn bench_vm(c: &mut Criterion) {
    c.bench_function("vm_translate", |b| {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let core = CoreId((i % 8) as u32);
            let tid = ThreadId((i % 8) as u32);
            black_box(vm.access(core, tid, hintm_types::PageId::from_index(i % 512), AccessKind::Load).cost)
        })
    });
}

fn bench_treap(c: &mut Criterion) {
    c.bench_function("treap_lookup_4k", |b| {
        let mut space = AddressSpace::new(1);
        let mut t = SimTreap::new(48);
        let sites = TreapSites::uniform(SiteId(0));
        for k in 0..4096u64 {
            t.insert(k, k, ThreadId(0), &mut space, &mut NullSink, sites);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(997);
            black_box(t.get(i % 4096, &mut NullSink, sites))
        })
    });
}

fn bench_classify(c: &mut Criterion) {
    use hintm_ir::{classify, ModuleBuilder};
    c.bench_function("ir_classify_kernel", |b| {
        b.iter(|| {
            let mut m = ModuleBuilder::new();
            let g = m.global("grid");
            let mut w = m.func("worker", 0);
            let my = w.halloc();
            w.begin_loop();
            w.tx_begin();
            let ga = w.global_addr(g);
            w.memcpy(my, ga);
            w.begin_loop();
            w.load(my);
            w.store(my);
            w.end_block();
            w.store(ga);
            w.tx_end();
            w.end_block();
            w.ret();
            let worker = w.finish();
            let mut main = m.func("main", 0);
            main.spawn(worker, vec![]);
            main.ret();
            let entry = main.finish();
            let module = m.finish(entry, worker);
            black_box(classify(&module).stats())
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    use hintm_sim::{Section, SimConfig, Simulator, TxBody, TxOp, Workload};
    use hintm_types::{MemAccess, ThreadId};

    struct Micro {
        left: Vec<usize>,
    }
    impl Workload for Micro {
        fn name(&self) -> &'static str {
            "micro"
        }
        fn num_threads(&self) -> usize {
            4
        }
        fn reset(&mut self, _s: u64) {
            self.left = vec![50; 4];
        }
        fn next_section(&mut self, tid: ThreadId) -> Option<Section> {
            let t = tid.index();
            if self.left[t] == 0 {
                return None;
            }
            self.left[t] -= 1;
            let base = 0x10_0000 + t as u64 * 0x1_0000 + self.left[t] as u64 * 256;
            Some(Section::Tx(TxBody::new(
                (0..8)
                    .map(|k| TxOp::Access(MemAccess::store(Addr::new(base + k * 64), SiteId(0))))
                    .collect(),
            )))
        }
    }

    c.bench_function("engine_200_small_txs", |b| {
        b.iter(|| {
            let mut w = Micro { left: vec![] };
            black_box(Simulator::new(SimConfig::default()).run(&mut w, 1).commits)
        })
    });
}

criterion_group!(
    benches,
    bench_signature,
    bench_p8_buffer,
    bench_cache,
    bench_vm,
    bench_treap,
    bench_classify,
    bench_engine
);
criterion_main!(benches);
