//! Microbenchmarks of the core structures: hardware signature, P8
//! transactional buffer, cache hierarchy, TLB/page walk, treap ops, the
//! classification pipeline and the engine — timed with a small std-only
//! harness (median of repeated batches, ns/op).

use hintm_htm::{Signature, Tracker};
use hintm_mem::ds::{SimTreap, TreapSites};
use hintm_mem::{AddressSpace, NullSink};
use hintm_types::{AccessKind, Addr, BlockAddr, CoreId, MachineConfig, SiteId, ThreadId};
use hintm_vm::VmSystem;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` in batches and prints the median per-iteration cost.
fn bench(name: &str, iters_per_batch: u64, mut f: impl FnMut()) {
    // Warm up.
    for _ in 0..iters_per_batch / 4 {
        f();
    }
    let mut samples: Vec<f64> = (0..15)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters_per_batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("{:<24} {:>10.1} ns/op", name, samples[samples.len() / 2]);
}

fn bench_signature() {
    let mut sig = Signature::new(1024, 2);
    let mut i = 0u64;
    bench("signature_insert_query", 100_000, || {
        i = i.wrapping_add(1);
        sig.insert(BlockAddr::from_index(i));
        black_box(sig.maybe_contains(BlockAddr::from_index(i ^ 0x5555)));
        if i.is_multiple_of(512) {
            sig.clear();
        }
    });
}

fn bench_p8_buffer() {
    bench("p8_track_64", 20_000, || {
        let mut t = Tracker::p8(64);
        for i in 0..64u64 {
            t.track(BlockAddr::from_index(i), i % 4 == 0).unwrap();
        }
        black_box(t.footprint());
    });
}

fn bench_cache() {
    let mut h = hintm_cache::Hierarchy::new(&MachineConfig::default());
    let mut i = 0u64;
    bench("cache_access_stream", 100_000, || {
        i = i.wrapping_add(1);
        let core = CoreId((i % 8) as u32);
        let blk = Addr::new((i * 64) % (1 << 22)).block();
        black_box(
            h.access(
                core,
                blk,
                if i.is_multiple_of(5) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
            )
            .latency,
        );
    });
}

fn bench_vm() {
    let mut vm = VmSystem::new(&MachineConfig::default(), false);
    let mut i = 0u64;
    bench("vm_translate", 100_000, || {
        i = i.wrapping_add(1);
        let core = CoreId((i % 8) as u32);
        let tid = ThreadId((i % 8) as u32);
        black_box(
            vm.access(
                core,
                tid,
                hintm_types::PageId::from_index(i % 512),
                AccessKind::Load,
            )
            .cost,
        );
    });
}

fn bench_treap() {
    let mut space = AddressSpace::new(1);
    let mut t = SimTreap::new(48);
    let sites = TreapSites::uniform(SiteId(0));
    for k in 0..4096u64 {
        t.insert(k, k, ThreadId(0), &mut space, &mut NullSink, sites);
    }
    let mut i = 0u64;
    bench("treap_lookup_4k", 100_000, || {
        i = i.wrapping_add(997);
        black_box(t.get(i % 4096, &mut NullSink, sites));
    });
}

fn bench_classify() {
    use hintm_ir::{classify, ModuleBuilder};
    bench("ir_classify_kernel", 2_000, || {
        let mut m = ModuleBuilder::new();
        let g = m.global("grid");
        let mut w = m.func("worker", 0);
        let my = w.halloc();
        w.begin_loop();
        w.tx_begin();
        let ga = w.global_addr(g);
        w.memcpy(my, ga);
        w.begin_loop();
        w.load(my);
        w.store(my);
        w.end_block();
        w.store(ga);
        w.tx_end();
        w.end_block();
        w.ret();
        let worker = w.finish();
        let mut main = m.func("main", 0);
        main.spawn(worker, vec![]);
        main.ret();
        let entry = main.finish();
        let module = m.finish(entry, worker);
        black_box(classify(&module).stats());
    });
}

fn bench_engine() {
    use hintm_sim::{Section, SimConfig, Simulator, TxBody, TxOp, Workload};
    use hintm_types::{MemAccess, ThreadId};

    struct Micro {
        left: Vec<usize>,
    }
    impl Workload for Micro {
        fn name(&self) -> &'static str {
            "micro"
        }
        fn num_threads(&self) -> usize {
            4
        }
        fn reset(&mut self, _s: u64) {
            self.left = vec![50; 4];
        }
        fn next_section(&mut self, tid: ThreadId) -> Option<Section> {
            let t = tid.index();
            if self.left[t] == 0 {
                return None;
            }
            self.left[t] -= 1;
            let base = 0x10_0000 + t as u64 * 0x1_0000 + self.left[t] as u64 * 256;
            Some(Section::Tx(TxBody::new(
                (0..8)
                    .map(|k| TxOp::Access(MemAccess::store(Addr::new(base + k * 64), SiteId(0))))
                    .collect(),
            )))
        }
    }

    bench("engine_200_small_txs", 50, || {
        let mut w = Micro { left: vec![] };
        black_box(Simulator::new(SimConfig::default()).run(&mut w, 1).commits);
    });
}

fn main() {
    println!("{:<24} {:>10}", "benchmark", "median");
    bench_signature();
    bench_p8_buffer();
    bench_cache();
    bench_vm();
    bench_treap();
    bench_classify();
    bench_engine();
}
