//! Ablation — eager conflict-resolution policy: requester-wins (commercial
//! HTM default, ours too) vs responder-wins, across the suite on baseline
//! P8. The policy decides which transaction dies when a coherence request
//! hits another thread's read/write set; it changes who loses work, not
//! whether conflicts exist.

use hintm::{HintMode, HtmKind, SimConfig, Simulator};
use hintm_bench::{banner, print_machine, x, SEED};
use hintm_types::ConflictPolicy;
use hintm_workloads::{by_name, Scale};

fn run(name: &str, policy: ConflictPolicy) -> hintm::RunStats {
    let mut cfg = SimConfig::with_htm(HtmKind::P8).hint_mode(HintMode::Off);
    cfg.machine.conflict_policy = policy;
    let mut w = by_name(name, Scale::Sim).expect("registered");
    Simulator::new(cfg).run(w.as_mut(), SEED)
}

fn main() {
    banner(
        "Ablation: eager conflict policy (requester-wins vs responder-wins)",
        "baseline P8; responder-wins aborts the requester's own TX on a hit",
    );
    print_machine();
    println!(
        "{:<10} | {:>12} {:>12} | {:>10} {:>10} | {:>9}",
        "workload", "conf(req)", "conf(resp)", "fb(req)", "fb(resp)", "resp-vs-req"
    );
    for name in hintm::WORKLOAD_NAMES {
        let req = run(name, ConflictPolicy::RequesterWins);
        let resp = run(name, ConflictPolicy::ResponderWins);
        println!(
            "{:<10} | {:>12} {:>12} | {:>10} {:>10} | {:>9}",
            name,
            req.aborts_of(hintm::AbortKind::Conflict),
            resp.aborts_of(hintm::AbortKind::Conflict),
            req.fallback_commits,
            resp.fallback_commits,
            x(req.total_cycles.raw() as f64 / resp.total_cycles.raw().max(1) as f64),
        );
    }
    println!(
        "\nrequester-wins favors the thread making progress *now* (commercial HTMs);\n\
         responder-wins protects long-running transactions at the requester's expense."
    );
}
