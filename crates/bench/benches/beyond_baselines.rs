//! Beyond the paper — related-work capacity mechanisms (§VII) as executable
//! comparators: HinTM on P8 vs rollback-only transactions (SI-HTM-style:
//! loads untracked, weaker isolation) vs a LogTM-style large HTM (unbounded
//! via memory log, strict isolation, per-overflow unroll costs).
//!
//! The question the paper leaves qualitative: how much of the "large HTM"
//! benefit does HinTM recover while keeping conventional-HTM hardware?

use hintm::{AbortKind, HintMode, HtmKind, Scale};
use hintm_bench::{banner, geomean, print_machine, run_cell, x};

fn main() {
    banner(
        "Beyond the paper: HinTM vs ROT (SI-HTM-style) vs LogTM-style large HTM",
        "speedups vs baseline P8; ROT trades isolation, LogTM trades hardware simplicity",
    );
    print_machine();
    println!(
        "{:<10} | {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>10}",
        "workload", "capB(P8)", "HinTM", "ROT", "LogTM", "InfCap", "ROT missed*"
    );

    let mut sp = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for name in hintm::WORKLOAD_NAMES {
        let base = run_cell(name, HtmKind::P8, HintMode::Off, Scale::Sim);
        let hintm_r = run_cell(name, HtmKind::P8, HintMode::Full, Scale::Sim);
        let rot = run_cell(name, HtmKind::Rot, HintMode::Off, Scale::Sim);
        let log = run_cell(name, HtmKind::LogTm, HintMode::Off, Scale::Sim);
        let inf = run_cell(name, HtmKind::InfCap, HintMode::Off, Scale::Sim);

        // Conflicts the strict configurations catch but ROT cannot see
        // (read-write races on untracked loads): approximate as the gap in
        // detected conflict aborts.
        let strict_conf = base.stats.aborts_of(AbortKind::Conflict);
        let rot_conf = rot.stats.aborts_of(AbortKind::Conflict);
        let missed = strict_conf.saturating_sub(rot_conf);

        println!(
            "{:<10} | {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>10}",
            name,
            base.stats.aborts_of(AbortKind::Capacity),
            x(hintm_r.speedup_vs(&base)),
            x(rot.speedup_vs(&base)),
            x(log.speedup_vs(&base)),
            x(inf.speedup_vs(&base)),
            missed,
        );
        sp[0].push(hintm_r.speedup_vs(&base));
        sp[1].push(rot.speedup_vs(&base));
        sp[2].push(log.speedup_vs(&base));
        sp[3].push(inf.speedup_vs(&base));
    }
    println!(
        "{:<10} | {:>9} | {:>8} {:>8} {:>8} {:>8} |",
        "GEOMEAN",
        "",
        x(geomean(&sp[0])),
        x(geomean(&sp[1])),
        x(geomean(&sp[2])),
        x(geomean(&sp[3])),
    );
    println!();
    println!(
        "* conflicts detectable under strict 2PL that ROT's untracked loads cannot see —\n\
          the isolation price of the SI-HTM approach (§VII). HinTM keeps strict 2PL and\n\
          conventional hardware while recovering most of the large-HTM headroom."
    );
}
