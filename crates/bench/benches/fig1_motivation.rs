//! Fig. 1 — Motivation: fraction of runtime spent on capacity aborts (P8
//! vs. InfCap gap), fraction of safe memory regions at cache-block and page
//! granularity, and fraction of transactional reads targeting safe regions.

use hintm::{capacity_runtime_fraction, HtmKind, WORKLOAD_NAMES};
use hintm_bench::{banner, mean, pct, print_machine, run_cells, SEED};
use hintm_runner::Cell;

fn fig1_cells(name: &str) -> [Cell; 3] {
    [
        Cell::new(name).htm(HtmKind::P8).seed(SEED),
        Cell::new(name).htm(HtmKind::InfCap).seed(SEED),
        Cell::new(name)
            .htm(HtmKind::InfCap)
            .profile_sharing(true)
            .seed(SEED),
    ]
}

fn main() {
    banner(
        "Figure 1: HTM capacity-abort cost and memory-access safety potential",
        "columns: %runtime on capacity aborts | safe regions (64B / 4KB) | safe TX reads (@4KB / @64B)",
    );
    print_machine();
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "workload", "cap-time", "safe-blk", "safe-pg", "safeRd@pg", "safeRd@blk"
    );

    // One parallel (and cached) sweep over the figure's whole grid.
    let grid: Vec<Cell> = WORKLOAD_NAMES.iter().flat_map(|n| fig1_cells(n)).collect();
    let results = run_cells(&grid);

    let mut cap = Vec::new();
    let mut pg = Vec::new();
    let mut rd_pg = Vec::new();
    let mut rd_blk = Vec::new();
    for name in WORKLOAD_NAMES {
        let [base_cell, inf_cell, prof_cell] = fig1_cells(name);
        let base = results.expect_report(&base_cell);
        let inf = results.expect_report(&inf_cell);
        let prof = results.expect_report(&prof_cell);
        let cap_frac = capacity_runtime_fraction(base, inf);
        let (blk_f, pg_f, rdpg_f, rdblk_f) = prof.stats.sharing.expect("profiling on");
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>14} {:>14}",
            name,
            pct(cap_frac),
            pct(blk_f),
            pct(pg_f),
            pct(rdpg_f),
            pct(rdblk_f)
        );
        cap.push(cap_frac);
        pg.push(pg_f);
        rd_pg.push(rdpg_f);
        rd_blk.push(rdblk_f);
    }
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "MEAN",
        pct(mean(&cap)),
        "",
        pct(mean(&pg)),
        pct(mean(&rd_pg)),
        pct(mean(&rd_blk))
    );
    println!();
    println!(
        "paper shape: cap-time up to 89% (labyrinth), ~22% mean; safe pages ~62% mean;\n\
         safe TX reads ~40% @page, ~60% @block"
    );
}
