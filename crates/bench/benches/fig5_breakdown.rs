//! Fig. 5 — Memory-access breakdown within transactions: the fraction of
//! in-transaction accesses classified compiler-safe, runtime-safe, and
//! unsafe (collected with HinTM + preserve, as in the paper).

use hintm::{Experiment, HintMode, HtmKind};
use hintm_bench::{banner, pct, print_machine, SEED};

/// The paper omits ssca2 and kmeans from Fig. 5 onward (§VI-C).
const SUBSET: [&str; 8] = [
    "bayes",
    "genome",
    "intruder",
    "labyrinth",
    "vacation",
    "yada",
    "tpcc-no",
    "tpcc-p",
];

fn main() {
    banner(
        "Figure 5: memory-access breakdown within transactions",
        "fractions of committed in-TX accesses: compiler-annotated safe / runtime-annotated safe / unsafe",
    );
    print_machine();
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "workload", "static-safe", "dyn-safe", "unsafe", "total-safe"
    );

    let mut totals = Vec::new();
    let mut statics = Vec::new();
    for name in SUBSET {
        let r = Experiment::new(name)
            .htm(HtmKind::P8)
            .hint_mode(HintMode::Full)
            .preserve(true)
            .seed(SEED)
            .run()
            .unwrap();
        let [st, dy, un] = r.stats.access_breakdown;
        let total = (st + dy + un).max(1) as f64;
        let fst = st as f64 / total;
        let fdy = dy as f64 / total;
        let fun = un as f64 / total;
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            name,
            pct(fst),
            pct(fdy),
            pct(fun),
            pct(fst + fdy)
        );
        totals.push(fst + fdy);
        statics.push(fst);
    }
    println!(
        "{:<10} {:>12} {:>38}",
        "MEAN",
        pct(hintm_bench::mean(&statics)),
        pct(hintm_bench::mean(&totals))
    );
    println!();
    println!(
        "paper shape: ~50% of TX accesses safe on average, dominated by the dynamic\n\
         mechanism; labyrinth 95% total (44% static); static finds 0% for genome,\n\
         intruder, yada; ~18% of tpcc-no loads; 2-4% for bayes/vacation/tpcc-p"
    );
}
