//! Fig. 6 — Transaction-size CDFs on the capacity-unconstrained InfCap
//! configuration: every committed TX's distinct-block footprint as seen by
//! (1) the baseline HTM (all blocks), (2) HinTM-st (blocks touched by
//! non-statically-safe accesses), and (3) full HinTM (blocks touched by
//! fully-unsafe accesses). The far-right tail beyond 64 blocks is the
//! population that must capacity-abort on P8.

use hintm::{Experiment, HintMode, HtmKind};
use hintm_bench::{banner, pct, print_machine, SEED};
use hintm_types::stats_util::{frac_above, percentile};

const PANELS: [&str; 4] = ["bayes", "genome", "labyrinth", "vacation"];
const P8_CAPACITY: u64 = 64;

fn main() {
    banner(
        "Figure 6: transaction size CDFs (baseline / HinTM-st / HinTM views)",
        "per panel: footprint percentiles in 64B blocks and the fraction exceeding P8's 64 entries",
    );
    print_machine();

    for name in PANELS {
        let r = Experiment::new(name)
            .htm(HtmKind::InfCap)
            .hint_mode(HintMode::Full)
            .record_tx_sizes(true)
            .seed(SEED)
            .run()
            .unwrap();
        let views: [(&str, &Vec<u32>); 3] = [
            ("baseline", &r.stats.tx_sizes_all),
            ("HinTM-st", &r.stats.tx_sizes_nonstatic),
            ("HinTM", &r.stats.tx_sizes_unsafe),
        ];
        println!(
            "--- {name} ({} committed TXs) ---",
            r.stats.tx_sizes_all.len()
        );
        println!(
            "{:<9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>10}",
            "view", "p25", "p50", "p75", "p95", "max", ">64 blocks"
        );
        for (label, sizes) in views {
            let s: Vec<u64> = sizes.iter().map(|v| *v as u64).collect();
            println!(
                "{:<9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>10}",
                label,
                percentile(&s, 25.0),
                percentile(&s, 50.0),
                percentile(&s, 75.0),
                percentile(&s, 95.0),
                s.iter().max().copied().unwrap_or(0),
                pct(frac_above(&s, P8_CAPACITY)),
            );
        }
        println!();
    }
    println!(
        "paper shape: HinTM-st overlaps baseline for bayes and genome; for labyrinth the\n\
         whole distribution collapses below 64; for vacation ~2% of baseline TXs exceed\n\
         64 and HinTM-st halves that tail"
    );
}
