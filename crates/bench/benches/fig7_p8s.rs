//! Fig. 7 — HinTM on P8S (P8 + readset-overflow signatures), with larger
//! inputs for capacity pressure (§VI-D1). Signatures unbound the readset,
//! so HinTM's remaining leverage is writeset reduction (capacity) and
//! false-conflict elimination (signature aliasing).

use hintm::{AbortKind, HintMode, HtmKind, Scale};
use hintm_bench::{banner, cell, geomean, pct, print_machine, run_cells, x};

const SUBSET: [&str; 8] = [
    "bayes",
    "genome",
    "intruder",
    "labyrinth",
    "vacation",
    "yada",
    "tpcc-no",
    "tpcc-p",
];

const HINTS: [HintMode; 4] = [
    HintMode::Off,
    HintMode::Static,
    HintMode::Dynamic,
    HintMode::Full,
];

fn main() {
    banner(
        "Figure 7: HinTM on the P8S (signature) HTM, larger inputs",
        "(a) capacity + false-conflict abort reduction; (b) speedup vs baseline P8S",
    );
    print_machine();
    println!(
        "{:<10} | {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>7} {:>7}",
        "workload", "capB", "capRed", "fcB", "fcRed", "sp-st", "sp-dyn", "sp-full"
    );

    // One parallel (and cached) sweep over the figure's whole grid.
    let grid: Vec<_> = SUBSET
        .iter()
        .flat_map(|name| {
            HINTS
                .iter()
                .map(|&h| cell(name, HtmKind::P8S, h, Scale::Large))
        })
        .collect();
    let results = run_cells(&grid);

    let mut sp = [Vec::new(), Vec::new(), Vec::new()];
    for name in SUBSET {
        let get = |h| results.expect_report(&cell(name, HtmKind::P8S, h, Scale::Large));
        let base = get(HintMode::Off);
        let st = get(HintMode::Static);
        let dy = get(HintMode::Dynamic);
        let full = get(HintMode::Full);

        let cap_b = base.stats.aborts_of(AbortKind::Capacity);
        let fc_b = base.stats.aborts_of(AbortKind::FalseConflict);
        println!(
            "{:<10} | {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>7} {:>7}",
            name,
            cap_b,
            pct(full.capacity_abort_reduction_vs(base)),
            fc_b,
            pct(full.false_conflict_reduction_vs(base)),
            x(st.speedup_vs(base)),
            x(dy.speedup_vs(base)),
            x(full.speedup_vs(base)),
        );
        sp[0].push(st.speedup_vs(base));
        sp[1].push(dy.speedup_vs(base));
        sp[2].push(full.speedup_vs(base));
    }
    println!(
        "{:<10} | {:>19} | {:>19} | {:>7} {:>7} {:>7}",
        "GEOMEAN",
        "",
        "",
        x(geomean(&sp[0])),
        x(geomean(&sp[1])),
        x(geomean(&sp[2])),
    );
    println!();
    println!(
        "paper shape: HinTM's benefit narrows but stays positive (~1.28x mean); labyrinth's\n\
         safe writes erase its capacity aborts; vacation's false conflicts drop ~87% for a\n\
         ~1.47x speedup; genome's false-conflict reduction does not move performance"
    );
}
