//! Footprints: per-workload committed-transaction footprint percentiles on
//! InfCap (the raw material behind Fig. 6). Useful when tuning inputs.
//!
//! ```sh
//! cargo run --release -p hintm-bench --bin footprints
//! ```

use hintm::{Experiment, HtmKind};
use hintm_types::stats_util::{frac_above, percentile};

fn main() {
    println!(
        "{:<10} {:>6} {:>5} {:>5} {:>5} {:>5} {:>9}",
        "workload", "txs", "p50", "p90", "p99", "max", ">64blk"
    );
    for name in hintm::WORKLOAD_NAMES {
        let r = Experiment::new(name)
            .htm(HtmKind::InfCap)
            .record_tx_sizes(true)
            .seed(42)
            .run()
            .unwrap();
        let s: Vec<u64> = r.stats.tx_sizes_all.iter().map(|v| *v as u64).collect();
        println!(
            "{:<10} {:>6} {:>5} {:>5} {:>5} {:>5} {:>8.2}%",
            name,
            s.len(),
            percentile(&s, 50.0),
            percentile(&s, 90.0),
            percentile(&s, 99.0),
            s.iter().max().copied().unwrap_or(0),
            100.0 * frac_above(&s, 64),
        );
    }
}
