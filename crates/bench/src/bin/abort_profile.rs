//! Abort profile: a quick per-workload census of the baseline P8 run —
//! transactions, fallbacks, and abort counts by kind. Useful when tuning
//! inputs or sanity-checking a change.
//!
//! ```sh
//! cargo run --release -p hintm-bench --bin abort_profile
//! ```

use hintm::{AbortKind, Experiment, HtmKind};

fn main() {
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>12}",
        "workload", "txs", "fb", "cap", "conf", "fc", "lock", "cycles"
    );
    for name in hintm::WORKLOAD_NAMES {
        let r = Experiment::new(name)
            .htm(HtmKind::P8)
            .seed(42)
            .run()
            .unwrap();
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>12}",
            name,
            r.stats.commits + r.stats.fallback_commits,
            r.stats.fallback_commits,
            r.stats.aborts_of(AbortKind::Capacity),
            r.stats.aborts_of(AbortKind::Conflict),
            r.stats.aborts_of(AbortKind::FalseConflict),
            r.stats.aborts_of(AbortKind::FallbackLock),
            r.stats.total_cycles.raw(),
        );
    }
}
