//! Engine-throughput harness over the pinned perf grid — the bench-side
//! front end for the same measurement `hintm perf` performs, for quick
//! interactive A/B runs while working on the hot path.
//!
//! ```sh
//! cargo run --release -p hintm-bench --bin perf_grid [-- --smoke]
//! HINTM_PERF_REPEAT=9 cargo run --release -p hintm-bench --bin perf_grid
//! HINTM_PERF_THREADS=4 cargo run --release -p hintm-bench --bin perf_grid
//! HINTM_PERF_EXEC=compiled cargo run --release -p hintm-bench --bin perf_grid
//! ```
//!
//! Prints the per-cell and overall median events/sec without writing or
//! comparing `BENCH_*.json` snapshots; use `hintm perf` for the tracked,
//! threshold-checked version.

use hintm::ExecMode;
use hintm_runner::perf::{full_grid, measure_cell, overall_median, smoke_grid};
use std::process::ExitCode;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let repeat = env_usize("HINTM_PERF_REPEAT", 5);
    let warmup = env_usize("HINTM_PERF_WARMUP", 1);
    let threads = env_usize("HINTM_PERF_THREADS", 1).max(1);
    let exec = match std::env::var("HINTM_PERF_EXEC").ok().as_deref() {
        None => ExecMode::Interp,
        Some(s) => match ExecMode::parse(s) {
            Some(e) => e,
            None => {
                eprintln!("error: bad HINTM_PERF_EXEC `{s}` (interp | compiled | both)");
                return ExitCode::FAILURE;
            }
        },
    };
    let grid = if smoke { smoke_grid() } else { full_grid() };
    println!(
        "perf grid: {} cells, warmup {warmup} + repeat {repeat}, sim-threads {threads}, exec {exec}",
        grid.len()
    );
    println!(
        "{:<10} {:<7} {:>10} {:>12} {:>12}",
        "workload", "htm", "events", "median ms", "events/sec"
    );
    let mut cells = Vec::with_capacity(grid.len());
    for c in &grid {
        match measure_cell(c, warmup, repeat, threads, exec) {
            Ok(m) => {
                println!(
                    "{:<10} {:<7} {:>10} {:>12.1} {:>12.0}",
                    m.workload,
                    m.htm,
                    m.events,
                    m.wall_ns as f64 / 1e6,
                    m.events_per_sec
                );
                cells.push(m);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("overall median: {:.0} events/sec", overall_median(&cells));
    ExitCode::SUCCESS
}
