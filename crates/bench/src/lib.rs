//! Shared helpers for the figure-regeneration bench harnesses.
//!
//! Each `benches/figN_*.rs` target (built with `harness = false`) runs the
//! simulator configurations behind one figure of the paper's evaluation and
//! prints the same rows/series the paper plots. Absolute numbers come from
//! our simulator, not the authors' SESC testbed — the *shape* (who wins,
//! by roughly what factor, where the crossovers sit) is the reproduction
//! target; see EXPERIMENTS.md for the side-by-side record.

use hintm::{HintMode, HtmKind, RunReport, Scale};
use hintm_runner::{Cell, Runner, SweepResult};

/// The seed every figure harness uses.
pub const SEED: u64 = 42;

/// The runner every harness shares: jobs and cache from the environment
/// (`HINTM_JOBS`, `HINTM_CACHE_DIR`, `HINTM_NO_CACHE=1`), per-cell
/// progress on stderr when `HINTM_PROGRESS` is set.
pub fn runner() -> Runner {
    Runner::from_env().progress(std::env::var_os("HINTM_PROGRESS").is_some())
}

/// Runs a harness's whole cell grid through the shared [`runner`]: cells
/// execute in parallel and land in the on-disk cache, so regenerating a
/// figure twice simulates nothing the second time.
pub fn run_cells(cells: &[Cell]) -> SweepResult {
    runner().run(cells)
}

/// A figure cell: `(workload, htm, hint)` at `scale` with the shared seed.
pub fn cell(workload: &str, htm: HtmKind, hint: HintMode, scale: Scale) -> Cell {
    Cell::new(workload)
        .htm(htm)
        .hint(hint)
        .scale(scale)
        .seed(SEED)
}

/// Runs one `(workload, htm, hint)` cell at the given scale (through the
/// runner, so results are cached like any sweep's).
pub fn run_cell(workload: &str, htm: HtmKind, hint: HintMode, scale: Scale) -> RunReport {
    let c = cell(workload, htm, hint, scale);
    run_cells(std::slice::from_ref(&c))
        .expect_report(&c)
        .clone()
}

/// Prints a figure banner.
pub fn banner(title: &str, detail: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("{detail}");
    println!("================================================================");
}

/// Prints the Table II machine summary (every harness leads with it).
pub fn print_machine() {
    println!("{}", hintm::MachineConfig::default().table2_summary());
    println!();
}

/// Formats a fraction as a percentage.
pub fn pct(f: f64) -> String {
    format!("{:5.1}%", f * 100.0)
}

/// Formats a speedup.
pub fn x(f: f64) -> String {
    format!("{f:5.2}x")
}

/// Geometric mean (re-exported for the harnesses).
pub fn geomean(values: &[f64]) -> f64 {
    hintm_types::stats_util::geomean(values)
}

/// Arithmetic mean (re-exported for the harnesses).
pub fn mean(values: &[f64]) -> f64 {
    hintm_types::stats_util::mean(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(x(1.5), " 1.50x");
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn run_cell_smoke() {
        let r = run_cell("ssca2", HtmKind::P8, HintMode::Off, Scale::Sim);
        assert!(r.stats.commits > 0);
    }
}
