//! Shared helpers for the figure-regeneration bench harnesses.
//!
//! Each `benches/figN_*.rs` target (built with `harness = false`) runs the
//! simulator configurations behind one figure of the paper's evaluation and
//! prints the same rows/series the paper plots. Absolute numbers come from
//! our simulator, not the authors' SESC testbed — the *shape* (who wins,
//! by roughly what factor, where the crossovers sit) is the reproduction
//! target; see EXPERIMENTS.md for the side-by-side record.

use hintm::{Experiment, HintMode, HtmKind, RunReport, Scale};

/// The seed every figure harness uses.
pub const SEED: u64 = 42;

/// Runs one `(workload, htm, hint)` cell at the given scale.
pub fn run_cell(workload: &str, htm: HtmKind, hint: HintMode, scale: Scale) -> RunReport {
    Experiment::new(workload)
        .htm(htm)
        .hint_mode(hint)
        .scale(scale)
        .seed(SEED)
        .run()
        .expect("registered workload")
}

/// Prints a figure banner.
pub fn banner(title: &str, detail: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("{detail}");
    println!("================================================================");
}

/// Prints the Table II machine summary (every harness leads with it).
pub fn print_machine() {
    println!("{}", hintm::MachineConfig::default().table2_summary());
    println!();
}

/// Formats a fraction as a percentage.
pub fn pct(f: f64) -> String {
    format!("{:5.1}%", f * 100.0)
}

/// Formats a speedup.
pub fn x(f: f64) -> String {
    format!("{f:5.2}x")
}

/// Geometric mean (re-exported for the harnesses).
pub fn geomean(values: &[f64]) -> f64 {
    hintm_types::stats_util::geomean(values)
}

/// Arithmetic mean (re-exported for the harnesses).
pub fn mean(values: &[f64]) -> f64 {
    hintm_types::stats_util::mean(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(x(1.5), " 1.50x");
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn run_cell_smoke() {
        let r = run_cell("ssca2", HtmKind::P8, HintMode::Off, Scale::Sim);
        assert!(r.stats.commits > 0);
    }
}
