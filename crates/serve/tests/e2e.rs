//! End-to-end tests for the sweep daemon: boot a server on an ephemeral
//! port, drive it purely over HTTP, and check the contract the ISSUE
//! pins down — the report CSV is byte-identical to `hintm sweep --csv`,
//! and resubmitting an identical sweep executes zero cells (visible in
//! `GET /stats`).

use hintm::Json;
use hintm_runner::{Cache, Runner};
use hintm_serve::http::client_request;
use hintm_serve::{join_loop, ServeConfig, Server};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// A 4-cell spec cheap enough for CI (two workloads × two HTM kinds).
const SPEC: &str = r#"{"workloads":["ssca2","kmeans"],"htm":["p8","infcap"]}"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hintm-e2e-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(tag: &str, workers: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        cache: Some(Cache::new(tmp_dir(tag))),
    })
    .expect("bind ephemeral port")
}

fn get_json(addr: &str, path: &str) -> (u16, Json) {
    let (status, body) = client_request(addr, "GET", path, b"").expect("GET");
    let text = String::from_utf8(body).expect("UTF-8 body");
    (status, Json::parse(&text).expect("JSON body"))
}

/// Submits `spec` and returns the new job id.
fn submit(addr: &str, spec: &str) -> u64 {
    let (status, body) = client_request(addr, "POST", "/sweeps", spec.as_bytes()).expect("POST");
    assert_eq!(status, 201, "body: {}", String::from_utf8_lossy(&body));
    Json::parse(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .field("id")
        .and_then(Json::as_u64)
        .expect("id in response")
}

/// Polls `GET /sweeps/{id}` until the job completes (with a deadline).
fn await_job(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, j) = get_json(addr, &format!("/sweeps/{id}"));
        assert_eq!(status, 200);
        if matches!(j.field("complete"), Ok(Json::Bool(true))) {
            assert_eq!(j.field("crashed").unwrap().as_u64().unwrap(), 0);
            return;
        }
        assert!(Instant::now() < deadline, "job {id} did not complete");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn queue_counter(addr: &str, name: &str) -> u64 {
    let (status, j) = get_json(addr, "/stats");
    assert_eq!(status, 200);
    j.field("queue")
        .and_then(|q| q.field(name))
        .and_then(Json::as_u64)
        .expect("queue counter")
}

#[test]
fn report_csv_is_byte_identical_to_the_sweep_cli() {
    let server = start_server("csv", 2);
    let addr = server.addr().to_string();
    let id = submit(&addr, SPEC);
    await_job(&addr, id);
    let (status, served) = client_request(
        &addr,
        "GET",
        &format!("/sweeps/{id}/report?format=csv"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 200);
    server.stop();
    server.join();

    // The same grid through the CLI, into a fresh cache.
    let out = Command::new(env!("CARGO_BIN_EXE_hintm"))
        .args([
            "sweep",
            "--workloads",
            "ssca2,kmeans",
            "--htm",
            "p8,infcap",
            "--csv",
            "--cache-dir",
        ])
        .arg(tmp_dir("csv-cli"))
        .env_remove("HINTM_CACHE_DIR")
        .output()
        .expect("run hintm sweep");
    assert!(
        out.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        served,
        out.stdout,
        "server CSV differs from CLI CSV:\n--- server ---\n{}\n--- cli ---\n{}",
        String::from_utf8_lossy(&served),
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn resubmitted_sweep_completes_entirely_from_cache() {
    let server = start_server("dedup", 2);
    let addr = server.addr().to_string();

    let first = submit(&addr, SPEC);
    await_job(&addr, first);
    let executed_after_first = queue_counter(&addr, "executed");
    assert_eq!(executed_after_first, 4);

    // Identical resubmission: every cell must come from the cache.
    let second = submit(&addr, SPEC);
    await_job(&addr, second);
    assert_eq!(
        queue_counter(&addr, "executed"),
        executed_after_first,
        "resubmission re-executed cells"
    );
    let (_, j) = get_json(&addr, &format!("/sweeps/{second}"));
    assert_eq!(j.field("cached").unwrap().as_u64().unwrap(), 4);
    for cell in j.field("cells").unwrap().as_arr().unwrap() {
        assert_eq!(cell.field("state").unwrap().as_str().unwrap(), "done");
        assert!(matches!(cell.field("cached"), Ok(Json::Bool(true))));
    }

    // And its reports are identical to the first job's.
    let (_, report_a) = client_request(
        &addr,
        "GET",
        &format!("/sweeps/{first}/report?format=csv"),
        b"",
    )
    .unwrap();
    let (_, report_b) = client_request(
        &addr,
        "GET",
        &format!("/sweeps/{second}/report?format=csv"),
        b"",
    )
    .unwrap();
    assert_eq!(report_a, report_b);

    server.stop();
    server.join();
}

#[test]
fn resubmission_at_a_different_lane_count_is_a_cache_replay() {
    // `sim_threads` only shards the engine across host lanes — results
    // are bit-identical, the cell key excludes it, and so a warm spec
    // resubmitted at a different lane count must execute zero cells.
    let server = start_server("lanes", 2);
    let addr = server.addr().to_string();

    let spec_serial = r#"{"workloads":["ssca2","kmeans"],"sim_threads":1}"#;
    let spec_lanes = r#"{"workloads":["ssca2","kmeans"],"sim_threads":4}"#;

    let first = submit(&addr, spec_serial);
    await_job(&addr, first);
    let executed_after_first = queue_counter(&addr, "executed");
    assert_eq!(executed_after_first, 2);

    let second = submit(&addr, spec_lanes);
    await_job(&addr, second);
    assert_eq!(
        queue_counter(&addr, "executed"),
        executed_after_first,
        "a lane-count change re-executed cells"
    );

    // Both jobs surface their lane count, and /stats tracks the max.
    let (_, a) = get_json(&addr, &format!("/sweeps/{first}"));
    assert_eq!(a.field("sim_threads").unwrap().as_u64().unwrap(), 1);
    let (_, b) = get_json(&addr, &format!("/sweeps/{second}"));
    assert_eq!(b.field("sim_threads").unwrap().as_u64().unwrap(), 4);
    assert_eq!(b.field("cached").unwrap().as_u64().unwrap(), 2);
    assert_eq!(queue_counter(&addr, "sim_threads_max"), 4);

    // Identical reports: the lane count never changes results.
    let (_, report_a) = client_request(
        &addr,
        "GET",
        &format!("/sweeps/{first}/report?format=csv"),
        b"",
    )
    .unwrap();
    let (_, report_b) = client_request(
        &addr,
        "GET",
        &format!("/sweeps/{second}/report?format=csv"),
        b"",
    )
    .unwrap();
    assert_eq!(report_a, report_b);

    server.stop();
    server.join();
}

#[test]
fn trace_endpoint_streams_chrome_json_and_binlog() {
    let server = start_server("trace", 1);
    let addr = server.addr().to_string();
    let id = submit(&addr, r#"{"workloads":["ssca2"]}"#);
    await_job(&addr, id);

    let (status, body) = client_request(
        &addr,
        "GET",
        &format!("/sweeps/{id}/cells/0/trace?events=500"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(
        body.starts_with(b"{\"traceEvents\":["),
        "not a Chrome trace"
    );

    let (status, body) = client_request(
        &addr,
        "GET",
        &format!("/sweeps/{id}/cells/0/trace?format=bin&events=500"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(body.starts_with(b"HTRC"), "not a binlog");

    let (status, _) =
        client_request(&addr, "GET", &format!("/sweeps/{id}/cells/99/trace"), b"").unwrap();
    assert_eq!(status, 404);

    server.stop();
    server.join();
}

#[test]
fn join_worker_drains_the_queue_over_http() {
    // workers = 0: the daemon serves the API but executes nothing.
    let server = start_server("join-srv", 0);
    let addr = server.addr().to_string();

    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || {
        let runner = Runner::new().cache(Cache::new(tmp_dir("join-wrk")));
        join_loop(&worker_addr, &runner)
    });

    let id = submit(&addr, r#"{"workloads":["ssca2","kmeans"]}"#);
    await_job(&addr, id);
    assert_eq!(queue_counter(&addr, "executed"), 2);

    // The daemon published the posted reports into its own cache, so a
    // resubmission is a pure cache replay even with zero local workers.
    let second = submit(&addr, r#"{"workloads":["ssca2","kmeans"]}"#);
    await_job(&addr, second);
    assert_eq!(queue_counter(&addr, "executed"), 2);

    // Shutdown surfaces to the worker as a 410 on /claim.
    let (status, _) = client_request(&addr, "POST", "/shutdown", b"").unwrap();
    assert_eq!(status, 200);
    let summary = worker.join().unwrap().expect("worker exits cleanly");
    assert_eq!(summary.crashed, 0);
    assert!(
        summary.completed >= 2,
        "worker completed {}",
        summary.completed
    );
    server.join();
}

#[test]
fn daemon_binary_boots_serves_and_shuts_down() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hintm"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--cache-dir",
        ])
        .arg(tmp_dir("bin"))
        .env_remove("HINTM_CACHE_DIR")
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn hintm serve");

    // The daemon announces its actual address on stderr.
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.strip_prefix("hintm serve listening on ") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    let (status, body) = client_request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    let id = submit(&addr, r#"{"workloads":["ssca2"]}"#);
    await_job(&addr, id);
    let (status, body) = client_request(
        &addr,
        "GET",
        &format!("/sweeps/{id}/report?format=csv"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(body.starts_with(b"workload,"));

    let (status, _) = client_request(&addr, "POST", "/shutdown", b"").unwrap();
    assert_eq!(status, 200);
    let exit = child.wait().expect("daemon exit status");
    assert!(exit.success(), "daemon exited with {exit:?}");
}

#[test]
fn error_paths_over_the_wire() {
    let server = start_server("errors", 0);
    let addr = server.addr().to_string();

    for (method, path, body, want) in [
        ("POST", "/sweeps", r#"{"workloads":["nope"]}"#, 400),
        ("POST", "/sweeps", "not json", 400),
        ("GET", "/sweeps/7", "", 404),
        ("GET", "/sweeps/7/report", "", 404),
        ("GET", "/nope", "", 404),
        ("PUT", "/sweeps", "", 405),
    ] {
        let (status, _) = client_request(&addr, method, path, body.as_bytes()).unwrap();
        assert_eq!(status, want, "{method} {path}");
    }

    // A pending job's report is a 409 until workers exist to finish it.
    let id = submit(&addr, r#"{"workloads":["ssca2"]}"#);
    let (status, _) = client_request(&addr, "GET", &format!("/sweeps/{id}/report"), b"").unwrap();
    assert_eq!(status, 409);

    server.stop();
    server.join();
}
