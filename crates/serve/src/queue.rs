//! The shared sweep job queue.
//!
//! A [`JobQueue`] holds every submitted job's cells and hands them out —
//! one at a time — to executor workers, whether those run as threads in
//! the daemon process or as remote `hintm serve --join` processes
//! claiming over HTTP. A `Mutex<State>` plus a `Condvar` is the whole
//! synchronization story.
//!
//! **Cross-job deduplication:** while a cell key is being executed for
//! one job, identical cells queued by other jobs stay pending; the
//! moment the first execution completes (and its report lands in the
//! result cache), the duplicates become claimable and resolve as instant
//! cache hits. Nothing is ever simulated twice concurrently, and repeat
//! submissions of a warm sweep execute zero cells.

use hintm_runner::{Cell, CellOutcome, CellResult};
use std::collections::{HashSet, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A claimed cell: which job it belongs to, its index in the job's spec
/// order, and the cell itself.
#[derive(Clone, Debug)]
pub struct Claim {
    /// Job id.
    pub job: usize,
    /// Cell index within the job (spec order).
    pub cell_index: usize,
    /// The cell to execute.
    pub cell: Cell,
}

/// Result of a non-blocking claim attempt (the HTTP `/claim` endpoint).
pub enum ClaimPoll {
    /// A cell was claimed.
    Claimed(Claim),
    /// Nothing claimable right now (empty queue, or every pending cell
    /// is blocked behind an in-flight duplicate).
    Empty,
    /// The queue is shutting down; workers should exit.
    Shutdown,
}

/// One cell's externally visible state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Queued, not yet claimed.
    Pending,
    /// Claimed by a worker.
    Running,
    /// Completed (`cached` = served from the result cache).
    Done {
        /// Whether the result came from the cache.
        cached: bool,
    },
    /// The execution panicked; the message is attached.
    Crashed(String),
}

/// A point-in-time snapshot of one job.
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// Job id.
    pub id: usize,
    /// The job's cells in spec order.
    pub cells: Vec<Cell>,
    /// Per-cell status, parallel to `cells`.
    pub status: Vec<CellStatus>,
    /// Per-cell wall time (zero until the cell completes).
    pub walls: Vec<Duration>,
    /// Completed cells (done + crashed).
    pub finished: usize,
    /// Completed cells served from the cache.
    pub cached: usize,
    /// Crashed cells.
    pub crashed: usize,
    /// Wall time from submission to completion (or to now if running).
    pub wall: Duration,
}

impl JobSnapshot {
    /// Whether every cell has finished.
    pub fn complete(&self) -> bool {
        self.finished == self.cells.len()
    }
}

/// Queue-wide counters for `GET /stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Jobs submitted since the daemon started.
    pub jobs: usize,
    /// Cells across all jobs.
    pub cells_total: usize,
    /// Cells not yet claimed.
    pub pending: usize,
    /// Cells currently executing.
    pub running: usize,
    /// Cells that were actually simulated.
    pub executed: u64,
    /// Cells served from the result cache.
    pub cached: u64,
    /// Cells that crashed.
    pub crashed: u64,
    /// The largest engine lane count (`sim_threads`) across every
    /// submitted cell — 1 when nothing has been submitted. Lane counts
    /// never change results, so this is operational info only.
    pub sim_threads_max: usize,
}

struct Job {
    cells: Vec<Cell>,
    results: Vec<Option<CellResult>>,
    running: Vec<bool>,
    finished: usize,
    created: Instant,
    completed_after: Option<Duration>,
}

struct State {
    jobs: Vec<Job>,
    /// `(job, cell_index)` entries awaiting a claim, FIFO.
    pending: VecDeque<(usize, usize)>,
    /// Cell keys currently being executed (any job).
    inflight: HashSet<String>,
    shutdown: bool,
    executed: u64,
    cached: u64,
    crashed: u64,
}

/// The shared queue (see the module docs).
pub struct JobQueue {
    state: Mutex<State>,
    cv: Condvar,
}

impl Default for JobQueue {
    fn default() -> Self {
        JobQueue::new()
    }
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(State {
                jobs: Vec::new(),
                pending: VecDeque::new(),
                inflight: HashSet::new(),
                shutdown: false,
                executed: 0,
                cached: 0,
                crashed: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Submits a job; its cells join the queue in spec order. Returns the
    /// job id.
    pub fn submit(&self, cells: Vec<Cell>) -> usize {
        let mut s = self.state.lock().unwrap();
        let id = s.jobs.len();
        let n = cells.len();
        s.jobs.push(Job {
            results: vec![None; n],
            running: vec![false; n],
            finished: 0,
            created: Instant::now(),
            completed_after: None,
            cells,
        });
        s.pending.extend((0..n).map(|i| (id, i)));
        drop(s);
        self.cv.notify_all();
        id
    }

    /// Blocks until a cell is claimable (or shutdown). Local executor
    /// workers live in this call; `None` means exit.
    pub fn claim_blocking(&self) -> Option<Claim> {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.shutdown {
                return None;
            }
            if let Some(claim) = Self::take_claimable(&mut s) {
                return Some(claim);
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Non-blocking claim for the HTTP `/claim` endpoint (remote
    /// workers poll).
    pub fn try_claim(&self) -> ClaimPoll {
        let mut s = self.state.lock().unwrap();
        if s.shutdown {
            return ClaimPoll::Shutdown;
        }
        match Self::take_claimable(&mut s) {
            Some(claim) => ClaimPoll::Claimed(claim),
            None => ClaimPoll::Empty,
        }
    }

    /// Pops the first pending entry whose cell key is not currently
    /// in-flight, marking it running.
    fn take_claimable(s: &mut State) -> Option<Claim> {
        let pos = s.pending.iter().position(|&(job, idx)| {
            let key = s.jobs[job].cells[idx].key();
            !s.inflight.contains(&key)
        })?;
        let (job, cell_index) = s.pending.remove(pos).expect("position is in range");
        let cell = s.jobs[job].cells[cell_index].clone();
        s.inflight.insert(cell.key());
        s.jobs[job].running[cell_index] = true;
        Some(Claim {
            job,
            cell_index,
            cell,
        })
    }

    /// Records a claimed cell's result, frees its key for queued
    /// duplicates, and updates the counters. A completion for a cell
    /// that already has a result (e.g. a worker retrying a post) is
    /// ignored.
    pub fn complete(&self, claim: &Claim, result: CellResult) {
        let mut s = self.state.lock().unwrap();
        s.inflight.remove(&claim.cell.key());
        let job = &mut s.jobs[claim.job];
        job.running[claim.cell_index] = false;
        if job.results[claim.cell_index].is_none() {
            let (executed, cached, crashed) = match &result.outcome {
                CellOutcome::Done(_) if result.cached => (0, 1, 0),
                CellOutcome::Done(_) => (1, 0, 0),
                CellOutcome::Crashed(_) => (0, 0, 1),
            };
            job.results[claim.cell_index] = Some(result);
            job.finished += 1;
            if job.finished == job.cells.len() {
                job.completed_after = Some(job.created.elapsed());
            }
            s.executed += executed;
            s.cached += cached;
            s.crashed += crashed;
        }
        drop(s);
        // Wake workers blocked behind this key, and completion pollers.
        self.cv.notify_all();
    }

    /// Returns a cell claimed via [`JobQueue::try_claim`] to the front of
    /// the queue (a remote worker failed before posting a result).
    pub fn requeue(&self, claim: &Claim) {
        let mut s = self.state.lock().unwrap();
        s.inflight.remove(&claim.cell.key());
        let job = &mut s.jobs[claim.job];
        if job.results[claim.cell_index].is_none() && job.running[claim.cell_index] {
            job.running[claim.cell_index] = false;
            s.pending.push_front((claim.job, claim.cell_index));
        }
        drop(s);
        self.cv.notify_all();
    }

    /// A snapshot of one job, or `None` for an unknown id.
    pub fn job(&self, id: usize) -> Option<JobSnapshot> {
        let s = self.state.lock().unwrap();
        let job = s.jobs.get(id)?;
        let mut cached = 0;
        let mut crashed = 0;
        let status = job
            .results
            .iter()
            .zip(&job.running)
            .map(|(result, &running)| match result {
                Some(r) => match &r.outcome {
                    CellOutcome::Done(_) => {
                        cached += usize::from(r.cached);
                        CellStatus::Done { cached: r.cached }
                    }
                    CellOutcome::Crashed(msg) => {
                        crashed += 1;
                        CellStatus::Crashed(msg.clone())
                    }
                },
                None if running => CellStatus::Running,
                None => CellStatus::Pending,
            })
            .collect();
        Some(JobSnapshot {
            id,
            cells: job.cells.clone(),
            status,
            walls: job
                .results
                .iter()
                .map(|r| r.as_ref().map_or(Duration::ZERO, |r| r.wall))
                .collect(),
            finished: job.finished,
            cached,
            crashed,
            wall: job.completed_after.unwrap_or_else(|| job.created.elapsed()),
        })
    }

    /// The number of submitted jobs.
    pub fn jobs(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    /// A complete job's results in spec order (`None` if the job is
    /// unknown or still running).
    pub fn results(&self, id: usize) -> Option<Vec<CellResult>> {
        let s = self.state.lock().unwrap();
        let job = s.jobs.get(id)?;
        if job.finished != job.cells.len() {
            return None;
        }
        Some(
            job.results
                .iter()
                .map(|r| r.clone().expect("finished job has every result"))
                .collect(),
        )
    }

    /// Queue-wide counters.
    pub fn stats(&self) -> QueueStats {
        let s = self.state.lock().unwrap();
        QueueStats {
            jobs: s.jobs.len(),
            cells_total: s.jobs.iter().map(|j| j.cells.len()).sum(),
            pending: s.pending.len(),
            running: s.inflight.len(),
            executed: s.executed,
            cached: s.cached,
            crashed: s.crashed,
            sim_threads_max: s
                .jobs
                .iter()
                .flat_map(|j| j.cells.iter())
                .map(|c| c.sim_threads)
                .max()
                .unwrap_or(1),
        }
    }

    /// Signals shutdown: blocked claimers return `None`, `try_claim`
    /// reports [`ClaimPoll::Shutdown`].
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.cv.notify_all();
    }

    /// Whether shutdown has been signalled.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().unwrap().shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, OnceLock};

    fn done(cell: &Cell, cached: bool) -> CellResult {
        static REPORT: OnceLock<hintm::RunReport> = OnceLock::new();
        let report = REPORT.get_or_init(|| Cell::new("ssca2").run().expect("ssca2 runs"));
        CellResult {
            cell: cell.clone(),
            outcome: CellOutcome::Done(Box::new(report.clone())),
            wall: Duration::from_millis(1),
            cached,
        }
    }

    #[test]
    fn claims_in_fifo_order_and_tracks_status() {
        let q = JobQueue::new();
        let cells = vec![Cell::new("ssca2"), Cell::new("kmeans")];
        let id = q.submit(cells);
        assert_eq!(id, 0);

        let a = q.claim_blocking().unwrap();
        assert_eq!((a.job, a.cell_index), (0, 0));
        let snap = q.job(0).unwrap();
        assert_eq!(snap.status[0], CellStatus::Running);
        assert_eq!(snap.status[1], CellStatus::Pending);
        assert!(!snap.complete());

        q.complete(&a, done(&a.cell, false));
        let b = q.claim_blocking().unwrap();
        assert_eq!(b.cell_index, 1);
        q.complete(&b, done(&b.cell, true));

        let snap = q.job(0).unwrap();
        assert!(snap.complete());
        assert_eq!(snap.cached, 1);
        assert_eq!(snap.crashed, 0);
        assert_eq!(snap.status[0], CellStatus::Done { cached: false });
        let stats = q.stats();
        assert_eq!((stats.executed, stats.cached, stats.crashed), (1, 1, 0));
        assert_eq!(q.results(0).unwrap().len(), 2);
    }

    #[test]
    fn duplicate_cells_across_jobs_wait_for_the_inflight_one() {
        let q = JobQueue::new();
        q.submit(vec![Cell::new("ssca2")]);
        q.submit(vec![Cell::new("ssca2")]);

        let first = q.claim_blocking().unwrap();
        // The duplicate is pending but not claimable while the first is
        // in flight.
        assert!(matches!(q.try_claim(), ClaimPoll::Empty));
        q.complete(&first, done(&first.cell, false));
        let ClaimPoll::Claimed(second) = q.try_claim() else {
            panic!("duplicate becomes claimable after completion");
        };
        assert_eq!(second.job, 1);
    }

    #[test]
    fn requeue_returns_a_claim_to_the_front() {
        let q = JobQueue::new();
        q.submit(vec![Cell::new("ssca2"), Cell::new("kmeans")]);
        let a = q.claim_blocking().unwrap();
        q.requeue(&a);
        let again = q.claim_blocking().unwrap();
        assert_eq!(again.cell_index, a.cell_index);
    }

    #[test]
    fn shutdown_unblocks_claimers() {
        let q = Arc::new(JobQueue::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.claim_blocking());
        std::thread::sleep(Duration::from_millis(20));
        q.shutdown();
        assert!(h.join().unwrap().is_none());
        assert!(matches!(q.try_claim(), ClaimPoll::Shutdown));
    }

    #[test]
    fn double_completion_is_idempotent() {
        let q = JobQueue::new();
        q.submit(vec![Cell::new("ssca2")]);
        let c = q.claim_blocking().unwrap();
        q.complete(&c, done(&c.cell, false));
        q.complete(&c, done(&c.cell, false));
        let stats = q.stats();
        assert_eq!(stats.executed, 1);
        assert_eq!(q.job(0).unwrap().finished, 1);
    }

    #[test]
    fn unknown_job_ids_are_none() {
        let q = JobQueue::new();
        assert!(q.job(3).is_none());
        assert!(q.results(3).is_none());
    }
}
