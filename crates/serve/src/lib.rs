//! `hintm-serve`: the sweep-as-a-service daemon (`hintm serve`).
//!
//! This crate turns the sweep runner into a long-lived HTTP service —
//! std-only, hand-rolled HTTP/1.1 on [`std::net::TcpListener`]:
//!
//! - [`queue`] — the shared [`JobQueue`]: submitted sweeps become cells
//!   handed out to workers, with cross-job deduplication (an in-flight
//!   cell key blocks identical queued cells until its report lands in
//!   the result cache, so they resolve as instant hits).
//! - [`http`] — minimal request/response plumbing plus the blocking
//!   client used by worker mode and tests.
//! - [`api`] — JSON ↔ domain mapping (sweep specs, cells, results,
//!   job snapshots).
//! - [`server`] — the daemon itself: acceptor, handler pool, local
//!   executor workers, and the route table (`POST /sweeps`,
//!   `GET /sweeps/{id}`, `GET /sweeps/{id}/report`,
//!   `GET /sweeps/{id}/cells/{idx}/trace`, `GET /stats`,
//!   `POST /claim`, `POST /shutdown`).
//! - [`worker`] — `--join` mode: a second process draining the queue
//!   over HTTP.
//!
//! The `hintm` binary lives here (this is the top crate of the
//! workspace's runner stack: `hintm` → `hintm-runner` → `hintm-serve`),
//! so `hintm serve` can reach both the CLI layer and the daemon.

pub mod api;
pub mod http;
pub mod queue;
pub mod server;
pub mod worker;

pub use queue::{CellStatus, Claim, ClaimPoll, JobQueue, JobSnapshot, QueueStats};
pub use server::{ServeConfig, Server};
pub use worker::{join_loop, JoinSummary};
