//! JSON ↔ domain mapping for the HTTP API.
//!
//! The wire sweep spec mirrors `hintm sweep`'s flags field-for-field:
//!
//! ```json
//! {
//!   "workloads": ["kmeans", "ssca2"],
//!   "htm": ["p8", "infcap"],
//!   "hints": ["off", "full"],
//!   "seeds": [1, 2],
//!   "scale": "sim",
//!   "threads": 8,
//!   "sim_threads": 1,
//!   "exec": "interp",
//!   "smt2": false,
//!   "preserve": false
//! }
//! ```
//!
//! `sim_threads` is the engine's host-lane count (`--sim-threads` on the
//! CLI): results are bit-identical for every value, so it is not part of
//! the cell key and resubmitting a spec at a different lane count is a
//! pure cache replay. `exec` (`interp` | `compiled` | `both`, the
//! `--exec` flag) picks the execution tier under the same contract —
//! bit-identical results, excluded from the cell key.
//!
//! Every field is optional with the same defaults as the CLI; unknown
//! fields are rejected so typos fail loudly instead of silently sweeping
//! the wrong grid. Cells on the claim/complete wire use the same JSON
//! object shape as the sweep manifest ([`hintm_runner::cell_to_json`]).

use hintm::cli::{parse_exec, parse_hints, parse_htm, parse_scale, scale_str};
use hintm::{HintMode, Json, RunReport, WORKLOAD_NAMES};
use hintm_runner::{cell_to_json, Cell, CellOutcome, CellResult, SweepResult, SweepSpec};
use std::time::Duration;

use crate::queue::{CellStatus, JobSnapshot};

/// Parses a hint-mode name: the CLI spellings (`off`, `static`, ...) plus
/// the report `Display` names (`baseline`, `HinTM-st`, ...), so cells
/// serialized from reports round-trip.
fn hint_from_str(v: &str) -> Result<HintMode, String> {
    parse_hints(v).or_else(|e| match v.to_ascii_lowercase().as_str() {
        "baseline" => Ok(HintMode::Off),
        "hintm-st" => Ok(HintMode::Static),
        "hintm-dyn" => Ok(HintMode::Dynamic),
        "hintm" => Ok(HintMode::Full),
        _ => Err(e.to_string()),
    })
}

fn str_items(j: &Json, field: &str) -> Result<Vec<String>, String> {
    j.as_arr()
        .map_err(|_| format!("`{field}` must be an array of strings"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .map_err(|_| format!("`{field}` must be an array of strings"))
        })
        .collect()
}

/// Builds the cell grid for a `POST /sweeps` body.
///
/// # Errors
///
/// Returns a description of the first malformed, unknown, or invalid
/// field — including workload names that are not registered.
pub fn cells_from_spec_json(j: &Json) -> Result<Vec<Cell>, String> {
    let obj = match j {
        Json::Obj(fields) => fields,
        _ => return Err("sweep spec must be a JSON object".into()),
    };
    let mut spec = SweepSpec::new();
    for (name, value) in obj {
        match name.as_str() {
            "workloads" => {
                for w in str_items(value, "workloads")? {
                    if !WORKLOAD_NAMES.contains(&w.as_str()) {
                        return Err(format!("unknown workload `{w}`"));
                    }
                    spec = spec.workload(&w);
                }
            }
            "htm" => {
                for h in str_items(value, "htm")? {
                    spec = spec.htm(parse_htm(&h).map_err(|e| e.to_string())?);
                }
            }
            "hints" => {
                for h in str_items(value, "hints")? {
                    spec = spec.hint(hint_from_str(&h)?);
                }
            }
            "seeds" => {
                let seeds = value
                    .as_arr()
                    .map_err(|_| "`seeds` must be an array of integers".to_string())?;
                for s in seeds {
                    spec = spec.seed(s.as_u64().map_err(|_| "bad seed".to_string())?);
                }
            }
            "scale" => {
                let s = value.as_str().map_err(|_| "`scale` must be a string")?;
                spec = spec.scale(parse_scale(s).map_err(|e| e.to_string())?);
            }
            "threads" => {
                if !matches!(value, Json::Null) {
                    let t = value.as_u64().map_err(|_| "`threads` must be an integer")?;
                    spec = spec.threads(t as usize);
                }
            }
            "sim_threads" => {
                let t = value
                    .as_u64()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or("`sim_threads` must be an integer >= 1")?;
                spec = spec.sim_threads(t as usize);
            }
            "exec" => {
                let s = value.as_str().map_err(|_| "`exec` must be a string")?;
                spec = spec.exec(parse_exec(s).map_err(|e| e.to_string())?);
            }
            "smt2" => spec = spec.smt2(as_bool(value, "smt2")?),
            "preserve" => spec = spec.preserve(as_bool(value, "preserve")?),
            "alloc_colors" => {
                let strides = value
                    .as_arr()
                    .map_err(|_| "`alloc_colors` must be an array of integers".to_string())?;
                for s in strides {
                    spec = spec.alloc_color(s.as_u64().map_err(|_| "bad alloc color".to_string())?);
                }
            }
            other => return Err(format!("unknown sweep spec field `{other}`")),
        }
    }
    let cells = spec.cells();
    if cells.is_empty() {
        return Err("sweep spec enumerates zero cells".into());
    }
    Ok(cells)
}

fn as_bool(j: &Json, field: &str) -> Result<bool, String> {
    match j {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("`{field}` must be a boolean")),
    }
}

/// Rebuilds a [`Cell`] from its [`cell_to_json`] object (the claim wire
/// format).
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn cell_from_json(j: &Json) -> Result<Cell, String> {
    let str_field = |name: &str| -> Result<&str, String> {
        j.field(name)
            .and_then(|v| v.as_str())
            .map_err(|e| e.to_string())
    };
    let bool_field = |name: &str| -> Result<bool, String> {
        match j.field(name).map_err(|e| e.to_string())? {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("`{name}` must be a boolean")),
        }
    };
    let mut cell = Cell::new(str_field("workload")?)
        .htm(parse_htm(str_field("htm")?).map_err(|e| e.to_string())?)
        .hint(hint_from_str(str_field("hints")?)?)
        .scale(parse_scale(str_field("scale")?).map_err(|e| e.to_string())?)
        .seed(
            j.field("seed")
                .and_then(|v| v.as_u64())
                .map_err(|e| e.to_string())?,
        )
        .smt2(bool_field("smt2")?)
        .preserve(bool_field("preserve")?)
        .record_tx_sizes(bool_field("record_tx_sizes")?)
        .profile_sharing(bool_field("profile_sharing")?);
    match j.field("threads").map_err(|e| e.to_string())? {
        Json::Null => {}
        v => cell = cell.threads(v.as_u64().map_err(|e| e.to_string())? as usize),
    }
    // Absent on pre-lane manifests: those cells ran serially.
    if let Some(v) = j.get("sim_threads") {
        cell = cell.sim_threads(v.as_u64().map_err(|e| e.to_string())? as usize);
    }
    // Absent on pre-compiler manifests: those cells interpreted.
    if let Some(v) = j.get("exec") {
        cell = cell
            .exec(parse_exec(v.as_str().map_err(|e| e.to_string())?).map_err(|e| e.to_string())?);
    }
    // Absent on pre-placement manifests: those cells used the packed
    // default layout.
    if let Some(v) = j.get("alloc_color") {
        cell = cell.alloc_color(v.as_u64().map_err(|e| e.to_string())?);
    }
    Ok(cell)
}

/// Renders a claim as the `/claim` response body.
pub fn claim_to_json(claim: &crate::queue::Claim) -> Json {
    Json::Obj(vec![
        ("job".into(), Json::u64(claim.job as u64)),
        ("cell_index".into(), Json::u64(claim.cell_index as u64)),
        ("cell".into(), cell_to_json(&claim.cell)),
    ])
}

/// Renders one job snapshot as the `GET /sweeps/{id}` body: totals plus
/// per-cell progress.
pub fn job_to_json(snap: &JobSnapshot) -> Json {
    let cells = snap
        .cells
        .iter()
        .zip(&snap.status)
        .zip(&snap.walls)
        .map(|((cell, status), wall)| {
            let mut fields = vec![
                ("key".into(), Json::Str(cell.key())),
                ("label".into(), Json::Str(cell.label())),
                (
                    "state".into(),
                    Json::Str(
                        match status {
                            CellStatus::Pending => "pending",
                            CellStatus::Running => "running",
                            CellStatus::Done { .. } => "done",
                            CellStatus::Crashed(_) => "crashed",
                        }
                        .into(),
                    ),
                ),
            ];
            if let CellStatus::Done { cached } = status {
                fields.push(("cached".into(), Json::Bool(*cached)));
                fields.push(("wall_ms".into(), Json::u64(wall.as_millis() as u64)));
            }
            if let CellStatus::Crashed(msg) = status {
                fields.push(("error".into(), Json::Str(msg.clone())));
            }
            Json::Obj(fields)
        })
        .collect();
    // The spec applies one lane count to every cell, so the first cell
    // speaks for the job (1 for the empty edge case).
    let sim_threads = snap.cells.first().map_or(1, |c| c.sim_threads);
    Json::Obj(vec![
        ("id".into(), Json::u64(snap.id as u64)),
        ("total".into(), Json::u64(snap.cells.len() as u64)),
        ("sim_threads".into(), Json::u64(sim_threads as u64)),
        ("finished".into(), Json::u64(snap.finished as u64)),
        ("cached".into(), Json::u64(snap.cached as u64)),
        ("crashed".into(), Json::u64(snap.crashed as u64)),
        ("complete".into(), Json::Bool(snap.complete())),
        ("wall_ms".into(), Json::u64(snap.wall.as_millis() as u64)),
        ("cells".into(), Json::Arr(cells)),
    ])
}

/// Reassembles a completed job's results into a [`SweepResult`], so the
/// report endpoints reuse the exact CSV/JSON rendering `hintm sweep`
/// writes — byte-identical output for identical specs.
pub fn sweep_result_from(results: Vec<CellResult>, wall: Duration, jobs: usize) -> SweepResult {
    let cache_hits = results.iter().filter(|r| r.cached).count();
    let crashed = results
        .iter()
        .filter(|r| matches!(r.outcome, CellOutcome::Crashed(_)))
        .count();
    SweepResult {
        executed: results.len() - cache_hits - crashed,
        cache_hits,
        crashed,
        cells: results,
        wall,
        jobs,
    }
}

/// Renders a completed-cell result as the `/complete` POST body a remote
/// worker sends back.
pub fn result_to_json(result: &CellResult) -> Json {
    let mut fields = vec![
        ("cached".into(), Json::Bool(result.cached)),
        ("wall_ms".into(), Json::u64(result.wall.as_millis() as u64)),
    ];
    match &result.outcome {
        CellOutcome::Done(report) => {
            fields.push(("report".into(), report.to_json_value()));
        }
        CellOutcome::Crashed(msg) => fields.push(("error".into(), Json::Str(msg.clone()))),
    }
    Json::Obj(fields)
}

/// Parses a `/complete` body back into the outcome for `cell`.
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn result_from_json(cell: &Cell, j: &Json) -> Result<CellResult, String> {
    let cached = match j.field("cached").map_err(|e| e.to_string())? {
        Json::Bool(b) => *b,
        _ => return Err("`cached` must be a boolean".into()),
    };
    let wall = Duration::from_millis(
        j.field("wall_ms")
            .and_then(|v| v.as_u64())
            .map_err(|e| e.to_string())?,
    );
    let outcome = if let Some(err) = j.get("error") {
        CellOutcome::Crashed(err.as_str().map_err(|e| e.to_string())?.to_string())
    } else {
        let report = RunReport::from_json_value(j.field("report").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        CellOutcome::Done(Box::new(report))
    };
    Ok(CellResult {
        cell: cell.clone(),
        outcome,
        wall,
        cached,
    })
}

/// The canonical name of a cell's scale (re-exported for handlers).
pub fn cell_scale_str(cell: &Cell) -> &'static str {
    scale_str(cell.scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hintm::{HtmKind, Scale};

    #[test]
    fn spec_json_mirrors_the_cli_axes() {
        let j = Json::parse(
            r#"{"workloads":["kmeans","ssca2"],"htm":["p8","infcap"],
                "hints":["off","full"],"seeds":[1,2],"scale":"large",
                "threads":4,"sim_threads":2,"exec":"compiled","smt2":true,"preserve":true}"#,
        )
        .unwrap();
        let cells = cells_from_spec_json(&j).unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert!(cells.iter().all(|c| {
            c.scale == Scale::Large
                && c.threads == Some(4)
                && c.sim_threads == 2
                && c.exec == hintm::ExecMode::Compiled
                && c.smt2
                && c.preserve
        }));
        // Same grid the CLI would enumerate.
        let cli = SweepSpec::new()
            .workloads(["kmeans", "ssca2"])
            .htms([HtmKind::P8, HtmKind::InfCap])
            .hints([HintMode::Off, HintMode::Full])
            .seeds([1, 2])
            .scale(Scale::Large)
            .threads(4)
            .sim_threads(2)
            .exec(hintm::ExecMode::Compiled)
            .smt2(true)
            .preserve(true)
            .cells();
        assert_eq!(cells, cli);
    }

    #[test]
    fn empty_spec_defaults_to_the_full_registry() {
        let cells = cells_from_spec_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(cells.len(), WORKLOAD_NAMES.len());
    }

    #[test]
    fn spec_rejects_bad_input() {
        for body in [
            r#"{"workloads":["not-a-workload"]}"#,
            r#"{"htm":["weird"]}"#,
            r#"{"hints":"off"}"#,
            r#"{"seeds":["x"]}"#,
            r#"{"scale":"huge"}"#,
            r#"{"sim_threads":0}"#,
            r#"{"sim_threads":"two"}"#,
            r#"{"exec":"jit"}"#,
            r#"{"exec":1}"#,
            r#"{"smt2":"yes"}"#,
            r#"{"frobnicate":1}"#,
            r#"[1,2]"#,
        ] {
            let j = Json::parse(body).unwrap();
            assert!(cells_from_spec_json(&j).is_err(), "accepted {body}");
        }
    }

    #[test]
    fn cell_round_trips_through_json() {
        let cells = [
            Cell::new("kmeans"),
            Cell::new("labyrinth")
                .htm(HtmKind::L1Tm)
                .hint(HintMode::Dynamic)
                .scale(Scale::Large)
                .seed(7)
                .threads(16)
                .sim_threads(4)
                .exec(hintm::ExecMode::Both)
                .smt2(true)
                .preserve(true),
        ];
        for cell in &cells {
            let back = cell_from_json(&cell_to_json(cell)).unwrap();
            assert_eq!(&back, cell);
            assert_eq!(back.key(), cell.key());
        }
    }

    #[test]
    fn pre_lane_cell_json_defaults_to_one_lane() {
        // Manifests written before the lane engine carry no
        // `sim_threads`; those cells ran serially.
        let cell = Cell::new("kmeans").sim_threads(8);
        let mut j = cell_to_json(&cell);
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "sim_threads");
        }
        let back = cell_from_json(&j).unwrap();
        assert_eq!(back.sim_threads, 1);
        // Lane count is not part of the key, so the claim still dedups.
        assert_eq!(back.key(), cell.key());
    }

    #[test]
    fn pre_compiler_cell_json_defaults_to_interp() {
        // Manifests written before the compilation tier carry no `exec`;
        // those cells interpreted.
        let cell = Cell::new("kmeans").exec(hintm::ExecMode::Compiled);
        let mut j = cell_to_json(&cell);
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "exec");
        }
        let back = cell_from_json(&j).unwrap();
        assert_eq!(back.exec, hintm::ExecMode::Interp);
        // The tier is not part of the key, so the claim still dedups.
        assert_eq!(back.key(), cell.key());
    }

    #[test]
    fn every_hint_display_name_parses_back() {
        for mode in [
            HintMode::Off,
            HintMode::Static,
            HintMode::Dynamic,
            HintMode::Full,
        ] {
            assert_eq!(hint_from_str(&mode.to_string()).unwrap(), mode);
        }
    }

    #[test]
    fn result_round_trips_including_crashes() {
        let cell = Cell::new("ssca2");
        let report = cell.run().unwrap();
        let ok = CellResult {
            cell: cell.clone(),
            outcome: CellOutcome::Done(Box::new(report)),
            wall: Duration::from_millis(12),
            cached: true,
        };
        let back = result_from_json(&cell, &result_to_json(&ok)).unwrap();
        assert!(back.cached);
        assert_eq!(back.wall, Duration::from_millis(12));
        assert_eq!(
            back.report().unwrap().to_json(),
            ok.report().unwrap().to_json()
        );

        let crashed = CellResult {
            cell: cell.clone(),
            outcome: CellOutcome::Crashed("boom".into()),
            wall: Duration::ZERO,
            cached: false,
        };
        let back = result_from_json(&cell, &result_to_json(&crashed)).unwrap();
        assert!(matches!(back.outcome, CellOutcome::Crashed(ref m) if m == "boom"));
    }
}
