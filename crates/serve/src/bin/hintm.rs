//! The `hintm` command-line tool: run reproduction experiments from the
//! shell. Lives in the serve crate — the top of the runner stack — so
//! `hintm sweep` / `hintm cache` can reach the orchestration layer and
//! `hintm serve` the daemon; everything else is delegated to
//! [`hintm::cli::execute`]. See `hintm help` or [`hintm::cli::USAGE`].

use hintm::cli::{self, Command, ServeArgs, SweepArgs};
use hintm_runner::{Cache, Runner, SweepSpec};
use hintm_serve::{join_loop, ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;

fn build_runner(sa: &SweepArgs) -> Runner {
    let jobs = sa
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let mut runner = Runner::new().jobs(jobs).progress(true);
    if sa.no_cache || sa.trace {
        // Tracing re-simulates every cell: cached results carry no event
        // stream to export.
        runner = runner.no_cache();
    } else if let Some(dir) = &sa.cache_dir {
        runner = runner.cache(Cache::new(dir));
    }
    runner
}

/// The `hintm sweep --smoke` workload subset: one small workload per
/// footprint regime (fits / read-heavy / write-present), fast enough for
/// a CI smoke job.
const SMOKE_WORKLOADS: [&str; 3] = ["kmeans", "ssca2", "tpcc-p"];

fn run_sweep(sa: &SweepArgs) -> Result<(), String> {
    let mut spec = SweepSpec::new()
        .htms(sa.htms.iter().copied())
        .hints(sa.hints.iter().copied())
        .seeds(sa.seeds.iter().copied())
        .alloc_colors(sa.alloc_colors.iter().copied())
        .scale(sa.scale)
        .sim_threads(sa.sim_threads)
        .exec(sa.exec)
        .smt2(sa.smt2)
        .preserve(sa.preserve);
    spec = if sa.workloads.is_empty() && sa.smoke {
        spec.workloads(SMOKE_WORKLOADS)
    } else {
        spec.workloads(sa.workloads.iter().map(String::as_str))
    };
    if let Some(t) = sa.threads {
        spec = spec.threads(t);
    }
    let cells = spec.cells();
    let runner = build_runner(sa);
    let result = if sa.trace {
        let trace_dir = sa.out.as_ref().map(|o| PathBuf::from(o).join("traces"));
        runner.run_with(&cells, |cell| {
            let (report, rec) = cell.run_traced(100_000).unwrap_or_else(|e| panic!("{e}"));
            if let Some(dir) = &trace_dir {
                if let Err(e) = hintm_runner::write_trace(dir, cell, &rec.events()) {
                    eprintln!("warning: trace export failed for {}: {e}", cell.label());
                }
            }
            report
        })
    } else {
        runner.run(&cells)
    };

    eprintln!(
        "sweep: {} cells in {:.2}s with {} jobs — {} simulated, {} cached, {} crashed",
        result.cells.len(),
        result.wall.as_secs_f64(),
        result.jobs,
        result.executed,
        result.cache_hits,
        result.crashed,
    );
    if let Some(out) = &sa.out {
        let paths = hintm_runner::write_artifacts(&PathBuf::from(out), "sweep", &result)
            .map_err(|e| format!("writing artifacts to {out}: {e}"))?;
        for p in paths {
            eprintln!("wrote {}", p.display());
        }
    }
    if sa.csv {
        print!("{}", hintm_runner::results_csv(&result));
    }
    if result.crashed > 0 {
        return Err(format!("{} cell(s) crashed", result.crashed));
    }
    if sa.audit {
        audit_sweep(sa, &cells)?;
    }
    if sa.analyze {
        analyze_sweep(sa, &cells)?;
    }
    Ok(())
}

/// Audits every distinct workload a sweep touched: runs the IR verifier,
/// the lint set, and the dynamic sharing oracle once per workload at the
/// sweep's scale and first seed.
fn audit_sweep(sa: &SweepArgs, cells: &[hintm_runner::Cell]) -> Result<(), String> {
    let mut names: Vec<&str> = cells.iter().map(|c| c.workload.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    let seed = sa.seeds.first().copied().unwrap_or(42);
    eprintln!("{}", cli::audit_header());
    let mut failed = 0usize;
    for name in names {
        match hintm_audit::audit_workload(name, sa.scale, seed) {
            Some(r) => {
                eprintln!("{}", cli::audit_row(&r));
                if !r.passed() {
                    failed += 1;
                }
            }
            None => return Err(format!("audit: unknown workload `{name}`")),
        }
    }
    if failed > 0 {
        return Err(format!("{failed} workload(s) failed the audit"));
    }
    Ok(())
}

/// Statically analyzes every distinct workload a sweep touched: footprint
/// bounds, per-model capacity verdicts, and the hint-inference diff, at
/// the sweep's scale. No extra simulator runs.
fn analyze_sweep(sa: &SweepArgs, cells: &[hintm_runner::Cell]) -> Result<(), String> {
    let mut names: Vec<&str> = cells.iter().map(|c| c.workload.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    eprintln!("{}", cli::analyze_header());
    let mut failed = 0usize;
    for name in names {
        match hintm_audit::analyze_workload(name, sa.scale) {
            Some(r) => {
                eprintln!("{}", cli::analyze_row(&r));
                if !r.passed() {
                    failed += 1;
                }
            }
            None => return Err(format!("analyze: unknown workload `{name}`")),
        }
    }
    if failed > 0 {
        return Err(format!("{failed} workload(s) failed the static analysis"));
    }
    Ok(())
}

fn cache_at(dir: Option<&str>) -> Cache {
    Cache::new(dir.map_or_else(Cache::default_dir, PathBuf::from))
}

fn clear_cache(dir: Option<&str>) -> Result<(), String> {
    let cache = cache_at(dir);
    let removed = cache.clear().map_err(|e| e.to_string())?;
    eprintln!(
        "cleared {} cached result(s) from {}",
        removed,
        cache.dir().display()
    );
    Ok(())
}

/// `hintm cache stats`: the same summary `GET /stats` serves, as a table.
fn cache_stats(dir: Option<&str>) -> Result<(), String> {
    let stats = cache_at(dir).stats().map_err(|e| e.to_string())?;
    println!("cache {}", stats.dir.display());
    println!("  schema     {}", stats.schema);
    println!("  entries    {}", stats.entries);
    println!("  bytes      {}", stats.bytes);
    println!("  stale      {}", stats.stale);
    println!("  unreadable {}", stats.unreadable);
    if !stats.by_workload.is_empty() {
        println!("  by workload:");
        for (name, w) in &stats.by_workload {
            println!(
                "    {name:<12} {:>5} entries {:>9} bytes",
                w.entries, w.bytes
            );
        }
    }
    Ok(())
}

fn serve(sa: &ServeArgs) -> Result<(), String> {
    let cache = Cache::new(
        sa.cache_dir
            .as_ref()
            .map_or_else(Cache::default_dir, PathBuf::from),
    );

    if let Some(daemon) = &sa.join {
        let workers = sa.workers.unwrap_or(1).max(1);
        let runner = Runner::new().cache(cache);
        eprintln!("joining {daemon} with {workers} worker(s)");
        let summaries: Vec<_> = std::thread::scope(|scope| {
            let runner = &runner;
            let handles: Vec<_> = (0..workers)
                .map(|_| scope.spawn(move || join_loop(daemon, runner)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut completed = 0;
        let mut crashed = 0;
        for s in summaries {
            let s = s.map_err(|e| format!("join worker failed: {e}"))?;
            completed += s.completed;
            crashed += s.crashed;
        }
        eprintln!("daemon shut down; this worker completed {completed} cell(s), {crashed} crashed");
        return Ok(());
    }

    let workers = sa
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let server = Server::start(ServeConfig {
        addr: sa.addr.clone(),
        workers,
        cache: Some(cache),
    })
    .map_err(|e| format!("binding {}: {e}", sa.addr))?;
    eprintln!(
        "hintm serve listening on {} with {} local worker(s) — POST /shutdown to stop",
        server.addr(),
        workers
    );
    server.join();
    eprintln!("hintm serve: shut down");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match &cmd {
        Command::Sweep(sa) => run_sweep(sa),
        Command::Perf(pa) => hintm_runner::perf::run_perf(pa),
        Command::CacheClear { dir } => clear_cache(dir.as_deref()),
        Command::CacheStats { dir } => cache_stats(dir.as_deref()),
        Command::Serve(sa) => serve(sa),
        other => {
            let mut out = std::io::stdout().lock();
            cli::execute(other, &mut out).map_err(|e| e.to_string())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
