//! Minimal hand-rolled HTTP/1.1 plumbing (std-only, `TcpStream`-based).
//!
//! Just enough protocol for the daemon's JSON API and for `curl`:
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies, and two response shapes — a buffered byte body with a length
//! header, or a streamed body (no length, terminated by close) for large
//! trace artifacts that should never be materialized in memory.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus headers.
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Upper bound on a request body (sweep specs and cell reports are small).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercase (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// Raw query string (after `?`), empty if absent.
    pub query: String,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads and parses one request from `reader`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a malformed request line or header, an
    /// oversized head or body, or a truncated body; propagates transport
    /// errors. A clean EOF before any bytes yields `UnexpectedEof`.
    pub fn read_from(reader: &mut BufReader<TcpStream>) -> io::Result<Request> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut line = String::new();
        let mut head_bytes = 0;
        reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "empty request",
            ));
        }
        head_bytes += line.len();
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| bad("missing method"))?
            .to_string();
        let target = parts.next().ok_or_else(|| bad("missing path"))?;
        if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
            return Err(bad("not an HTTP/1.x request"));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header)?;
            head_bytes += header.len();
            if head_bytes > MAX_HEAD_BYTES {
                return Err(bad("request head too large"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            let Some((name, value)) = header.split_once(':') else {
                return Err(bad("malformed header"));
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(bad("request body too large"));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        Ok(Request {
            method,
            path,
            query,
            body,
        })
    }

    /// The decoded value of query parameter `name`, if present (no
    /// percent-decoding — the API's parameters are plain tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }

    /// The path split into non-empty `/`-separated segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// A body-producing closure: writes the body straight to the socket.
pub type BodyWriter = Box<dyn FnOnce(&mut dyn Write) -> io::Result<()> + Send>;

/// A response body: buffered bytes, or a writer-driven stream.
pub enum Body {
    /// A fully-materialized body sent with `Content-Length`.
    Bytes(Vec<u8>),
    /// A streaming body: the closure writes directly to the (buffered)
    /// socket; the response carries no `Content-Length` and the
    /// connection close delimits it.
    Stream(BodyWriter),
}

/// An HTTP response ready to be written.
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body.
    pub body: Body,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &hintm::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: Body::Bytes(value.to_string().into_bytes()),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, text: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Body::Bytes(text.into().into_bytes()),
        }
    }

    /// A buffered response with an explicit content type (e.g. CSV).
    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type,
            body: Body::Bytes(body),
        }
    }

    /// A streaming response: `f` writes the body straight to the socket.
    pub fn stream(
        content_type: &'static str,
        f: impl FnOnce(&mut dyn Write) -> io::Result<()> + Send + 'static,
    ) -> Response {
        Response {
            status: 200,
            content_type,
            body: Body::Stream(Box::new(f)),
        }
    }

    /// A JSON `{"error": msg}` response.
    pub fn error(status: u16, msg: impl Into<String>) -> Response {
        Response::json(
            status,
            &hintm::Json::Obj(vec![("error".into(), hintm::Json::Str(msg.into()))]),
        )
    }

    /// Serializes the response onto `stream` (head, then body). Always
    /// sends `Connection: close`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the socket write fails.
    pub fn write_to(self, stream: TcpStream) -> io::Result<()> {
        let mut w = BufWriter::new(stream);
        let reason = match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            410 => "Gone",
            _ => "Internal Server Error",
        };
        write!(
            w,
            "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nConnection: close\r\n",
            self.status, self.content_type
        )?;
        match self.body {
            Body::Bytes(bytes) => {
                write!(w, "Content-Length: {}\r\n\r\n", bytes.len())?;
                w.write_all(&bytes)?;
            }
            Body::Stream(f) => {
                w.write_all(b"\r\n")?;
                f(&mut w)?;
            }
        }
        w.flush()
    }
}

/// A tiny blocking HTTP client for worker mode and tests: sends one
/// request, reads the whole response.
///
/// # Errors
///
/// Returns the transport error, or `InvalidData` on a malformed status
/// line.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    // Skip headers; the connection close delimits the body.
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_request_and_writes_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let req = Request::read_from(&mut reader).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/sweeps");
            assert_eq!(req.query_param("format"), Some("csv"));
            assert_eq!(req.segments(), vec!["sweeps"]);
            assert_eq!(req.body, b"{\"x\":1}");
            Response::text(200, "hello").write_to(stream).unwrap();
        });
        let (status, body) = client_request(&addr, "POST", "/sweeps?format=csv", b"{\"x\":1}")
            .expect("client request");
        assert_eq!(status, 200);
        assert_eq!(body, b"hello");
        server.join().unwrap();
    }

    #[test]
    fn streams_bodies_without_content_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            Request::read_from(&mut reader).unwrap();
            Response::stream("application/octet-stream", |w| {
                for chunk in [b"abc".as_slice(), b"def"] {
                    w.write_all(chunk)?;
                }
                Ok(())
            })
            .write_to(stream)
            .unwrap();
        });
        let (status, body) = client_request(&addr, "GET", "/x", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"abcdef");
        server.join().unwrap();
    }

    #[test]
    fn rejects_malformed_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"NONSENSE\r\n\r\n").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        assert!(Request::read_from(&mut reader).is_err());
        client.join().unwrap();
    }
}
