//! Remote worker mode: `hintm serve --join HOST:PORT`.
//!
//! A join worker is a second process (or machine) that drains a running
//! daemon's queue over HTTP: it polls `POST /claim`, executes each
//! claimed cell with the local [`Runner`] (cache consult + panic
//! isolation included), and posts the outcome back to
//! `POST /sweeps/{job}/cells/{idx}/result`. The daemon publishes posted
//! reports into its own cache, so the cross-job deduplication guarantees
//! hold no matter which side executed a cell.

use hintm_runner::{CellOutcome, Runner};
use std::io;
use std::time::Duration;

use crate::api::{cell_from_json, result_to_json};
use crate::http::client_request;
use crate::queue::Claim;

/// How long a join worker sleeps after an empty `/claim` poll.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// What a join worker did before the daemon shut down.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinSummary {
    /// Cells executed (simulated or served from this worker's cache).
    pub completed: usize,
    /// Cells whose execution crashed (still reported to the daemon).
    pub crashed: usize,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Runs the join loop against the daemon at `addr` until it signals
/// shutdown (HTTP 410 on `/claim`).
///
/// # Errors
///
/// Returns transport errors talking to the daemon, or `InvalidData` if
/// it sends a malformed claim or rejects a posted result.
pub fn join_loop(addr: &str, runner: &Runner) -> io::Result<JoinSummary> {
    let mut summary = JoinSummary::default();
    loop {
        let (status, body) = client_request(addr, "POST", "/claim", b"")?;
        let claim = match status {
            200 => parse_claim(&body).map_err(invalid)?,
            204 => {
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
            410 => return Ok(summary),
            other => return Err(invalid(format!("/claim returned HTTP {other}"))),
        };

        let result = runner.execute_cell(&claim.cell);
        if matches!(result.outcome, CellOutcome::Crashed(_)) {
            summary.crashed += 1;
        }
        let path = format!("/sweeps/{}/cells/{}/result", claim.job, claim.cell_index);
        let body = result_to_json(&result).to_string();
        let (status, _) = client_request(addr, "POST", &path, body.as_bytes())?;
        if status != 200 {
            return Err(invalid(format!("result post rejected: HTTP {status}")));
        }
        summary.completed += 1;
    }
}

/// Parses a `/claim` 200 body back into a [`Claim`].
fn parse_claim(body: &[u8]) -> Result<Claim, String> {
    let text = std::str::from_utf8(body).map_err(|_| "claim body is not UTF-8".to_string())?;
    let j = hintm::Json::parse(text).map_err(|e| e.to_string())?;
    let job = j
        .field("job")
        .and_then(|v| v.as_u64())
        .map_err(|e| e.to_string())? as usize;
    let cell_index = j
        .field("cell_index")
        .and_then(|v| v.as_u64())
        .map_err(|e| e.to_string())? as usize;
    let cell = cell_from_json(j.field("cell").map_err(|e| e.to_string())?)?;
    Ok(Claim {
        job,
        cell_index,
        cell,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::claim_to_json;
    use hintm_runner::Cell;

    #[test]
    fn claim_wire_format_round_trips() {
        let claim = Claim {
            job: 3,
            cell_index: 7,
            cell: Cell::new("kmeans").seed(9),
        };
        let body = claim_to_json(&claim).to_string();
        let back = parse_claim(body.as_bytes()).unwrap();
        assert_eq!((back.job, back.cell_index), (3, 7));
        assert_eq!(back.cell, claim.cell);
    }

    #[test]
    fn malformed_claims_are_rejected() {
        assert!(parse_claim(b"{\"job\":1}").is_err());
        assert!(parse_claim(b"not json").is_err());
    }
}
