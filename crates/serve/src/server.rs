//! The sweep daemon: listener, handler pool, and local executor workers.
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!   curl / workers ─▶│ acceptor ─mpsc─▶ handler pool (route/JSON) │
//!                    │                     │        ▲             │
//!                    │              submit ▼        │ /claim      │
//!                    │                  JobQueue ◀──┘             │
//!                    │                     ▲                      │
//!                    │   local executors ──┘  (Runner + cache)    │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! Every route is stateless over the shared [`JobQueue`] + result cache,
//! so any number of handler threads, local executors, and remote
//! `--join` workers can interleave. Reports are rendered by the same
//! [`hintm_runner::results_csv`]/[`hintm_runner::results_json`] used by
//! `hintm sweep` — a server-side sweep's CSV is byte-identical to the
//! CLI's for the same spec.

use hintm::Json;
use hintm_runner::{results_csv, results_json, Cache, CellOutcome, Runner};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::api;
use crate::http::{Request, Response};
use crate::queue::{Claim, ClaimPoll, JobQueue};

/// How many connection-handler threads the daemon runs. Handlers are
/// cheap (JSON in/out) except the trace endpoint, which re-simulates.
const HANDLER_THREADS: usize = 4;

/// How long the listener keeps serving after shutdown is requested, so
/// polling `--join` workers observe the 410 on `/claim` (they poll every
/// 100 ms) instead of a refused connection.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(300);

/// Daemon configuration (see `hintm serve --help`).
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8191` (port 0 picks an ephemeral
    /// port — [`Server::addr`] reports the actual one).
    pub addr: String,
    /// Local executor workers. `0` means the daemon executes nothing
    /// itself and relies entirely on `--join` workers.
    pub workers: usize,
    /// The shared result cache (`None` disables caching and with it
    /// cross-job deduplication of completed results).
    pub cache: Option<Cache>,
}

struct Shared {
    addr: SocketAddr,
    queue: JobQueue,
    runner: Runner,
    cache: Option<Cache>,
    workers: usize,
    started: Instant,
    requests: AtomicU64,
    /// Shutdown requested: `/claim` answers 410, executors drain.
    stopping: AtomicBool,
    /// Grace elapsed: the acceptor exits at its next wake-up.
    accepting_done: AtomicBool,
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`Server::stop`] (tests) or let `POST /shutdown` end it, then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor, handler pool, and local executor
    /// workers, and returns immediately.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let mut runner = Runner::new();
        runner = match config.cache.clone() {
            Some(cache) => runner.cache(cache),
            None => runner.no_cache(),
        };
        let shared = Arc::new(Shared {
            addr,
            queue: JobQueue::new(),
            runner,
            cache: config.cache,
            workers: config.workers,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            accepting_done: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..HANDLER_THREADS {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            threads.push(std::thread::spawn(move || loop {
                let Ok(stream) = rx.lock().unwrap().recv() else {
                    return;
                };
                handle_connection(&shared, stream);
            }));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.accepting_done.load(Ordering::SeqCst) {
                        return; // drops `tx`; handlers drain and exit
                    }
                    if let Ok(stream) = conn {
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                }
            }));
        }
        for _ in 0..config.workers {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                while let Some(claim) = shared.queue.claim_blocking() {
                    let result = shared.runner.execute_cell(&claim.cell);
                    shared.queue.complete(&claim, result);
                }
            }));
        }
        Ok(Server { shared, threads })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared job queue (used by tests to observe progress).
    pub fn queue(&self) -> &JobQueue {
        &self.shared.queue
    }

    /// Requests shutdown, exactly as `POST /shutdown` does: local
    /// executors drain, the acceptor stops after the drain grace,
    /// handlers exit.
    pub fn stop(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until the server has fully shut down (acceptor, handlers,
    /// and executor workers all exited).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Flags the stop and wakes queue waiters immediately (executors exit,
/// `/claim` starts answering 410), then — after [`SHUTDOWN_GRACE`] —
/// pokes the listener so the blocking `accept` notices and exits.
fn initiate_shutdown(shared: &Arc<Shared>) {
    if shared.stopping.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.shutdown();
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        std::thread::sleep(SHUTDOWN_GRACE);
        shared.accepting_done.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(shared.addr);
    });
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(peer_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_half);
    let response = match Request::read_from(&mut reader) {
        Ok(req) => {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            route(shared, &req)
        }
        // The shutdown wake-up connect lands here as UnexpectedEof.
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return,
        Err(e) => Response::error(400, e.to_string()),
    };
    let _ = response.write_to(stream);
}

fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    let segments = req.segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["stats"]) => stats(shared),
        ("POST", ["sweeps"]) => submit(shared, req),
        ("GET", ["sweeps"]) => list(shared),
        ("GET", ["sweeps", id]) => job(shared, id),
        ("GET", ["sweeps", id, "report"]) => report(shared, id, req),
        ("GET", ["sweeps", id, "cells", idx, "trace"]) => trace(shared, id, idx, req),
        ("POST", ["claim"]) => claim(shared),
        ("POST", ["sweeps", id, "cells", idx, "result"]) => post_result(shared, id, idx, req),
        ("POST", ["shutdown"]) => {
            initiate_shutdown(shared);
            Response::json(
                200,
                &Json::Obj(vec![("status".into(), Json::Str("shutting down".into()))]),
            )
        }
        (_, ["healthz" | "stats" | "sweeps" | "claim" | "shutdown", ..]) => {
            Response::error(405, format!("method {} not allowed here", req.method))
        }
        _ => Response::error(404, format!("no route for {}", req.path)),
    }
}

/// `GET /stats`: server uptime/requests, queue counters, cache contents.
/// The `queue.executed` counter is the proof the e2e tests lean on — a
/// resubmitted warm sweep must leave it unchanged.
fn stats(shared: &Shared) -> Response {
    let q = shared.queue.stats();
    let cache = match &shared.cache {
        Some(c) => match c.stats() {
            Ok(s) => s.to_json(),
            Err(e) => return Response::error(500, format!("cache stats failed: {e}")),
        },
        None => Json::Null,
    };
    Response::json(
        200,
        &Json::Obj(vec![
            (
                "server".into(),
                Json::Obj(vec![
                    ("addr".into(), Json::Str(shared.addr.to_string())),
                    (
                        "uptime_ms".into(),
                        Json::u64(shared.started.elapsed().as_millis() as u64),
                    ),
                    (
                        "requests".into(),
                        Json::u64(shared.requests.load(Ordering::Relaxed)),
                    ),
                    ("workers".into(), Json::u64(shared.workers as u64)),
                ]),
            ),
            (
                "queue".into(),
                Json::Obj(vec![
                    ("jobs".into(), Json::u64(q.jobs as u64)),
                    ("cells_total".into(), Json::u64(q.cells_total as u64)),
                    ("pending".into(), Json::u64(q.pending as u64)),
                    ("running".into(), Json::u64(q.running as u64)),
                    ("executed".into(), Json::u64(q.executed)),
                    ("cached".into(), Json::u64(q.cached)),
                    ("crashed".into(), Json::u64(q.crashed)),
                    (
                        "sim_threads_max".into(),
                        Json::u64(q.sim_threads_max as u64),
                    ),
                ]),
            ),
            ("cache".into(), cache),
        ]),
    )
}

fn submit(shared: &Shared, req: &Request) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let spec = match Json::parse(body) {
        Ok(j) => j,
        Err(e) => return Response::error(400, format!("bad JSON: {e}")),
    };
    let cells = match api::cells_from_spec_json(&spec) {
        Ok(cells) => cells,
        Err(e) => return Response::error(400, e),
    };
    let n = cells.len();
    let id = shared.queue.submit(cells);
    Response::json(
        201,
        &Json::Obj(vec![
            ("id".into(), Json::u64(id as u64)),
            ("cells".into(), Json::u64(n as u64)),
            ("location".into(), Json::Str(format!("/sweeps/{id}"))),
        ]),
    )
}

fn list(shared: &Shared) -> Response {
    let jobs = (0..shared.queue.jobs())
        .filter_map(|id| shared.queue.job(id))
        .map(|snap| {
            Json::Obj(vec![
                ("id".into(), Json::u64(snap.id as u64)),
                ("total".into(), Json::u64(snap.cells.len() as u64)),
                ("finished".into(), Json::u64(snap.finished as u64)),
                ("complete".into(), Json::Bool(snap.complete())),
            ])
        })
        .collect();
    Response::json(200, &Json::Arr(jobs))
}

fn parse_index(raw: &str, what: &str) -> Result<usize, Response> {
    raw.parse()
        .map_err(|_| Response::error(400, format!("bad {what} `{raw}`")))
}

fn job(shared: &Shared, id: &str) -> Response {
    let id = match parse_index(id, "job id") {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    match shared.queue.job(id) {
        Some(snap) => Response::json(200, &api::job_to_json(&snap)),
        None => Response::error(404, format!("no job {id}")),
    }
}

/// `GET /sweeps/{id}/report?format=csv|json`. 409 until the job is
/// complete, so pollers can't read a partial table.
fn report(shared: &Shared, id: &str, req: &Request) -> Response {
    let id = match parse_index(id, "job id") {
        Ok(id) => id,
        Err(resp) => return resp,
    };
    let Some(snap) = shared.queue.job(id) else {
        return Response::error(404, format!("no job {id}"));
    };
    let Some(results) = shared.queue.results(id) else {
        return Response::error(
            409,
            format!(
                "job {id} is not complete ({}/{} cells)",
                snap.finished,
                snap.cells.len()
            ),
        );
    };
    let result = api::sweep_result_from(results, snap.wall, shared.workers.max(1));
    match req.query_param("format").unwrap_or("json") {
        "csv" => Response::bytes(
            200,
            "text/csv; charset=utf-8",
            results_csv(&result).into_bytes(),
        ),
        "json" => Response::json(200, &results_json(&result)),
        other => Response::error(400, format!("unknown report format `{other}`")),
    }
}

/// `GET /sweeps/{id}/cells/{idx}/trace?format=json|bin&events=N`:
/// re-simulates the cell with tracing enabled and streams the artifact
/// straight onto the socket (Chrome JSON via [`chrome_trace_to`] or the
/// binlog via [`write_binlog_to`]) without materializing it.
///
/// [`chrome_trace_to`]: hintm_trace::chrome_trace_to
/// [`write_binlog_to`]: hintm_trace::write_binlog_to
fn trace(shared: &Shared, id: &str, idx: &str, req: &Request) -> Response {
    let (id, idx) = match (parse_index(id, "job id"), parse_index(idx, "cell index")) {
        (Ok(id), Ok(idx)) => (id, idx),
        (Err(resp), _) | (_, Err(resp)) => return resp,
    };
    let Some(snap) = shared.queue.job(id) else {
        return Response::error(404, format!("no job {id}"));
    };
    let Some(cell) = snap.cells.get(idx) else {
        return Response::error(404, format!("job {id} has no cell {idx}"));
    };
    let cap = match req.query_param("events").map(str::parse) {
        None => 100_000,
        Some(Ok(n)) => n,
        Some(Err(_)) => return Response::error(400, "bad `events` value"),
    };
    let (_, recording) = match cell.run_traced(cap) {
        Ok(v) => v,
        Err(e) => return Response::error(500, e.to_string()),
    };
    let events = recording.events();
    match req.query_param("format").unwrap_or("json") {
        "bin" => Response::stream("application/octet-stream", move |w| {
            hintm_trace::write_binlog_to(&events, &mut &mut *w)
        }),
        "json" => Response::stream("application/json", move |w| {
            hintm_trace::chrome_trace_to(&events, &mut &mut *w)
        }),
        other => Response::error(400, format!("unknown trace format `{other}`")),
    }
}

/// `POST /claim`: hands one cell to a remote `--join` worker. 200 with
/// the claim, 204 when nothing is claimable, 410 once shutting down.
fn claim(shared: &Shared) -> Response {
    match shared.queue.try_claim() {
        ClaimPoll::Claimed(claim) => Response::json(200, &api::claim_to_json(&claim)),
        ClaimPoll::Empty => Response::bytes(204, "application/json", Vec::new()),
        ClaimPoll::Shutdown => Response::error(410, "server is shutting down"),
    }
}

/// `POST /sweeps/{id}/cells/{idx}/result`: a remote worker reports a
/// claimed cell. The report is published to the daemon's cache first, so
/// queued duplicates resolve as hits exactly as with local execution.
fn post_result(shared: &Shared, id: &str, idx: &str, req: &Request) -> Response {
    let (id, idx) = match (parse_index(id, "job id"), parse_index(idx, "cell index")) {
        (Ok(id), Ok(idx)) => (id, idx),
        (Err(resp), _) | (_, Err(resp)) => return resp,
    };
    let Some(snap) = shared.queue.job(id) else {
        return Response::error(404, format!("no job {id}"));
    };
    let Some(cell) = snap.cells.get(idx).cloned() else {
        return Response::error(404, format!("job {id} has no cell {idx}"));
    };
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|s| Json::parse(s).map_err(|e| format!("bad JSON: {e}")))
    {
        Ok(j) => j,
        Err(e) => return Response::error(400, e),
    };
    let result = match api::result_from_json(&cell, &body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, e),
    };
    if let (Some(cache), CellOutcome::Done(report)) = (&shared.cache, &result.outcome) {
        if !result.cached {
            let _ = cache.store(&cell, report);
        }
    }
    let claim = Claim {
        job: id,
        cell_index: idx,
        cell,
    };
    shared.queue.complete(&claim, result);
    Response::json(200, &Json::Obj(vec![("ok".into(), Json::Bool(true))]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_request;

    fn start_test_server(workers: usize) -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            cache: None,
        })
        .expect("bind ephemeral port")
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let server = start_test_server(0);
        let addr = server.addr().to_string();
        let (status, body) = client_request(&addr, "GET", "/healthz", b"").unwrap();
        assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
        let (status, _) = client_request(&addr, "GET", "/nope", b"").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(&addr, "DELETE", "/stats", b"").unwrap();
        assert_eq!(status, 405);
        server.stop();
        server.join();
    }

    #[test]
    fn submit_validates_and_reports_are_gated() {
        let server = start_test_server(0); // no workers: job stays pending
        let addr = server.addr().to_string();

        let (status, _) =
            client_request(&addr, "POST", "/sweeps", b"{\"workloads\":[\"nope\"]}").unwrap();
        assert_eq!(status, 400);

        let (status, body) =
            client_request(&addr, "POST", "/sweeps", b"{\"workloads\":[\"ssca2\"]}").unwrap();
        assert_eq!(status, 201);
        let j = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(j.field("id").unwrap().as_u64().unwrap(), 0);

        let (status, _) = client_request(&addr, "GET", "/sweeps/0/report", b"").unwrap();
        assert_eq!(status, 409);
        let (status, _) = client_request(&addr, "GET", "/sweeps/9/report", b"").unwrap();
        assert_eq!(status, 404);

        server.stop();
        server.join();
    }

    #[test]
    fn local_workers_drain_a_job_and_stats_count_it() {
        let server = start_test_server(2);
        let addr = server.addr().to_string();
        let (status, _) = client_request(
            &addr,
            "POST",
            "/sweeps",
            b"{\"workloads\":[\"ssca2\",\"kmeans\"]}",
        )
        .unwrap();
        assert_eq!(status, 201);

        loop {
            let (_, body) = client_request(&addr, "GET", "/sweeps/0", b"").unwrap();
            let j = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
            if let Json::Bool(true) = j.field("complete").unwrap() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        let (status, body) = client_request(&addr, "GET", "/stats", b"").unwrap();
        assert_eq!(status, 200);
        let j = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        let queue = j.field("queue").unwrap();
        assert_eq!(queue.field("executed").unwrap().as_u64().unwrap(), 2);
        assert_eq!(queue.field("pending").unwrap().as_u64().unwrap(), 0);

        let (status, body) =
            client_request(&addr, "GET", "/sweeps/0/report?format=csv", b"").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with(b"workload,"), "got: {:?}", &body[..40]);

        server.stop();
        server.join();
    }

    #[test]
    fn shutdown_endpoint_stops_everything() {
        let server = start_test_server(1);
        let addr = server.addr().to_string();
        let (status, _) = client_request(&addr, "POST", "/shutdown", b"").unwrap();
        assert_eq!(status, 200);
        server.join(); // returns only if acceptor/handlers/workers exited
    }
}
