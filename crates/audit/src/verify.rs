//! Structural well-formedness verification for IR modules.
//!
//! The verifier checks the invariants every other pass silently assumes:
//! values are defined before use and in range, calls match their callee's
//! arity, access sites and call sites are unique and dense, every function
//! is reachable from the entry point, and `tx_begin`/`tx_end` pair up in
//! every control-flow shape. A module that passes is safe to feed to the
//! points-to, sharing, replication, and classification passes.

use hintm_ir::{FuncId, Instr, Module, Stmt, ValueId};
use std::collections::BTreeSet;
use std::fmt;

/// One well-formedness violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending function's name (`None` for module-level errors).
    pub func: Option<String>,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in {name}: {}", self.message),
            None => write!(f, "module: {}", self.message),
        }
    }
}

/// Verifies `module`, returning every violation in deterministic order
/// (functions in id order, instructions in syntactic order, module-level
/// checks last). An empty result means the module is well-formed.
pub fn verify(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for (fid, f) in module.iter_funcs() {
        let err = |msg: String, errors: &mut Vec<VerifyError>| {
            errors.push(VerifyError {
                func: Some(f.name.clone()),
                message: msg,
            });
        };

        // Def-before-use in syntactic order (params are pre-defined; the
        // builder numbers values linearly, so a def in either branch of an
        // `if` legitimately dominates later syntactic uses via phi-like
        // store/load joins).
        let mut defined: BTreeSet<ValueId> = (0..f.num_params as u32).map(ValueId).collect();
        module.visit_instrs(fid, |i| {
            for v in used_values(i) {
                if v.0 as usize >= f.num_values {
                    err(
                        format!("value v{} out of range (num_values {})", v.0, f.num_values),
                        &mut errors,
                    );
                } else if !defined.contains(&v) {
                    err(
                        format!("value v{} used before definition", v.0),
                        &mut errors,
                    );
                }
            }
            if let Some(out) = defined_value(i) {
                if out.0 as usize >= f.num_values {
                    err(
                        format!(
                            "defined value v{} out of range (num_values {})",
                            out.0, f.num_values
                        ),
                        &mut errors,
                    );
                } else if !defined.insert(out) {
                    err(format!("value v{} defined twice", out.0), &mut errors);
                }
            }
            // Call/spawn arity and callee range.
            if let Instr::Call { callee, args, .. } | Instr::Spawn { callee, args } = i {
                if callee.0 as usize >= module.funcs.len() {
                    err(format!("callee f{} out of range", callee.0), &mut errors);
                } else {
                    let want = module.func(*callee).num_params;
                    if args.len() != want {
                        err(
                            format!(
                                "call to {} passes {} args, callee takes {}",
                                module.func(*callee).name,
                                args.len(),
                                want
                            ),
                            &mut errors,
                        );
                    }
                }
            }
        });

        // tx_begin/tx_end pairing across the structured control flow.
        match tx_delta(&f.body) {
            Err(msg) => err(msg, &mut errors),
            Ok(d) if d != 0 => err(format!("function ends with tx depth {d}"), &mut errors),
            Ok(_) => {}
        }
    }

    // Site uniqueness and density (module-wide).
    check_dense(
        module,
        "access site",
        module.num_sites,
        |i, sites| match i {
            Instr::Load { site, .. } | Instr::Store { site, .. } => sites.push(site.0),
            Instr::Memcpy {
                load_site,
                store_site,
                ..
            } => {
                sites.push(load_site.0);
                sites.push(store_site.0);
            }
            _ => {}
        },
        &mut errors,
    );
    check_dense(
        module,
        "call site",
        module.num_call_sites,
        |i, sites| {
            if let Instr::Call { id, .. } = i {
                sites.push(id.0);
            }
        },
        &mut errors,
    );

    // Reachability from the entry point, following calls and spawns.
    let mut reachable: BTreeSet<FuncId> = BTreeSet::new();
    let mut work = vec![module.entry];
    while let Some(fid) = work.pop() {
        if !reachable.insert(fid) || fid.0 as usize >= module.funcs.len() {
            continue;
        }
        module.visit_instrs(fid, |i| {
            if let Instr::Call { callee, .. } | Instr::Spawn { callee, .. } = i {
                if (callee.0 as usize) < module.funcs.len() {
                    work.push(*callee);
                }
            }
        });
    }
    for (fid, f) in module.iter_funcs() {
        if !reachable.contains(&fid) {
            errors.push(VerifyError {
                func: None,
                message: format!("function {} is unreachable from the entry point", f.name),
            });
        }
    }
    if !reachable.contains(&module.thread_root) {
        errors.push(VerifyError {
            func: None,
            message: "thread root is unreachable from the entry point".to_string(),
        });
    }

    errors
}

/// Values an instruction reads.
fn used_values(i: &Instr) -> Vec<ValueId> {
    match i {
        Instr::Alloca { .. } | Instr::Halloc { .. } | Instr::Global { .. } => vec![],
        Instr::Free { ptr } => vec![*ptr],
        Instr::Gep { base, .. } => vec![*base],
        Instr::Load { ptr, .. } => vec![*ptr],
        Instr::Store { ptr, val, .. } => {
            let mut v = vec![*ptr];
            v.extend(val.iter().copied());
            v
        }
        Instr::Memcpy { dst, src, .. } => vec![*dst, *src],
        Instr::Call { args, .. } | Instr::Spawn { args, .. } => args.clone(),
        Instr::TxBegin | Instr::TxEnd => vec![],
        Instr::Return { val } => val.iter().copied().collect(),
    }
}

/// The value an instruction defines, if any.
fn defined_value(i: &Instr) -> Option<ValueId> {
    match i {
        Instr::Alloca { out }
        | Instr::Halloc { out }
        | Instr::Global { out, .. }
        | Instr::Gep { out, .. } => Some(*out),
        Instr::Load { out, .. } => *out,
        Instr::Call { out, .. } => *out,
        _ => None,
    }
}

/// Net `tx_begin`/`tx_end` delta of a block, or an error description.
///
/// A loop body must be net-zero (otherwise depth changes per iteration)
/// and the two sides of a branch must agree; the running depth may never
/// go negative.
fn tx_delta(stmts: &[Stmt]) -> Result<i32, String> {
    let mut depth = 0i32;
    for s in stmts {
        match s {
            Stmt::Instr(Instr::TxBegin) => depth += 1,
            Stmt::Instr(Instr::TxEnd) => {
                depth -= 1;
                if depth < 0 {
                    return Err("tx_end without matching tx_begin".to_string());
                }
            }
            Stmt::Instr(_) => {}
            Stmt::Loop { body, .. } => {
                let d = tx_delta(body)?;
                if d != 0 {
                    return Err(format!("loop body has net tx delta {d}"));
                }
            }
            Stmt::If(a, b) => {
                let da = tx_delta(a)?;
                let db = tx_delta(b)?;
                if da != db {
                    return Err(format!("branch sides disagree on tx delta ({da} vs {db})"));
                }
                depth += da;
                if depth < 0 {
                    return Err("tx_end without matching tx_begin".to_string());
                }
            }
        }
    }
    Ok(depth)
}

/// Checks that the ids collected by `collect` are unique and exactly
/// `0..count`.
fn check_dense(
    module: &Module,
    what: &str,
    count: u32,
    collect: impl Fn(&Instr, &mut Vec<u32>),
    errors: &mut Vec<VerifyError>,
) {
    let mut ids = Vec::new();
    for (fid, _) in module.iter_funcs() {
        module.visit_instrs(fid, |i| collect(i, &mut ids));
    }
    let mut seen = BTreeSet::new();
    for id in &ids {
        if !seen.insert(*id) {
            errors.push(VerifyError {
                func: None,
                message: format!("{what} {id} used more than once"),
            });
        }
    }
    for id in 0..count {
        if !seen.contains(&id) {
            errors.push(VerifyError {
                func: None,
                message: format!("{what} {id} allocated but never used"),
            });
        }
    }
    if let Some(max) = seen.iter().next_back() {
        if *max >= count {
            errors.push(VerifyError {
                func: None,
                message: format!("{what} {max} exceeds the declared count {count}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hintm_ir::{Function, ModuleBuilder};

    fn tiny() -> Module {
        let mut m = ModuleBuilder::new();
        let mut w = m.func("worker", 0);
        let buf = w.halloc();
        w.tx_begin();
        w.store(buf);
        w.tx_end();
        w.ret();
        let worker = w.finish();
        let mut main = m.func("main", 0);
        main.spawn(worker, vec![]);
        main.ret();
        let entry = main.finish();
        m.finish(entry, worker)
    }

    #[test]
    fn well_formed_module_passes() {
        assert!(verify(&tiny()).is_empty());
    }

    #[test]
    fn unreachable_function_reported() {
        let mut module = tiny();
        module.funcs.push(Function {
            name: "orphan".to_string(),
            num_params: 0,
            body: vec![Stmt::Instr(Instr::Return { val: None })],
            num_values: 0,
            alloc_sizes: Default::default(),
        });
        let errs = verify(&module);
        assert!(errs.iter().any(|e| e.message.contains("orphan")));
    }

    #[test]
    fn arity_mismatch_reported() {
        let mut module = tiny();
        // main spawns worker (0 params) — hand it a bogus argument.
        module.funcs[1 /* main */].body.insert(
            0,
            Stmt::Instr(Instr::Spawn {
                callee: FuncId(0),
                args: vec![ValueId(0)],
            }),
        );
        module.funcs[1].num_values = 1;
        let errs = verify(&module);
        assert!(errs.iter().any(|e| e.message.contains("args")));
        // The bogus arg is also used-before-defined.
        assert!(errs.iter().any(|e| e.message.contains("before definition")));
    }

    #[test]
    fn unbalanced_tx_reported() {
        let mut module = tiny();
        // Drop the TxEnd from the worker.
        module.funcs[0]
            .body
            .retain(|s| !matches!(s, Stmt::Instr(Instr::TxEnd)));
        let errs = verify(&module);
        assert!(errs.iter().any(|e| e.message.contains("tx depth")));
    }

    #[test]
    fn duplicate_site_reported() {
        let mut module = tiny();
        // Duplicate the worker's store (same SiteId appears twice).
        let dup = module.funcs[0]
            .body
            .iter()
            .find(|s| matches!(s, Stmt::Instr(Instr::Store { .. })))
            .cloned()
            .unwrap();
        module.funcs[0].body.push(dup);
        let errs = verify(&module);
        assert!(errs.iter().any(|e| e.message.contains("more than once")));
    }
}
