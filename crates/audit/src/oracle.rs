//! The dynamic sharing oracle: checks declared safe sites against the
//! inter-thread sharing an actual run exhibits.
//!
//! A safe hint tells the HTM to skip conflict tracking for an access, so a
//! hint is *unsound* exactly when the access could race: the paper's §IV-A
//! contract is that a safe access touches memory no other thread touches
//! concurrently. The oracle replays a workload under a [`TraceSink`]
//! (consuming the engine's access, section-start and barrier events),
//! records per-address sharing with [`AccessRecorder`], and then judges
//! every executed site:
//!
//! * a safe **load** is unsound if another thread *wrote* its address in
//!   the same barrier epoch (the load could read torn speculative state);
//! * a safe **store** is unsound if another thread wrote the address in the
//!   same epoch **and** the storing thread was not the address's *logical*
//!   first writer. The exemption admits the initialize-then-publish
//!   pattern: the thread that creates an object initializes it with safe
//!   stores before any other thread can reach it. "Logical" order is
//!   section *generation* order (via [`TraceEvent::SectionStart`]),
//!   not execution order — workload state advances when a section is
//!   generated, so a later thread's rotation write to a fresh node can
//!   physically execute before the creator's own init store replays, and
//!   judging by execution order would flag sound hints;
//! * an *unhinted* site is a **missed hint** if every address it touched is
//!   provably private (one thread only) or never written (read-only) — the
//!   classifier left performance on the table.
//!
//! Reads and writes are compared at raw-address granularity, not cache
//! blocks: false sharing within a block aborts transactions but does not
//! make a hint unsound.

use hintm_mem::AccessRecorder;
use hintm_sim::{TraceEvent, TraceSink};
use hintm_types::{AccessKind, Addr, MemAccess, SiteId, ThreadId};
use std::collections::{BTreeMap, BTreeSet};

/// One observation: `(address, epoch, thread, is_store)`.
type Obs = (u64, u32, u32, bool);

/// Observes a run and accumulates everything the oracle needs.
#[derive(Clone, Debug, Default)]
pub struct OracleRecorder {
    rec: AccessRecorder,
    /// Per-site distinct observations. Runtime-internal accesses
    /// ([`SiteId::UNKNOWN`]) are excluded — they carry no hint.
    site_obs: BTreeMap<SiteId, BTreeSet<Obs>>,
    /// Each thread's current section-generation sequence number.
    cur_seq: BTreeMap<u32, u64>,
    /// Global section-generation counter.
    next_seq: u64,
    /// Per-address logically-first writer: the storing thread whose
    /// section was generated earliest, `(generation seq, thread)`.
    logical_writer: BTreeMap<u64, (u64, u32)>,
}

impl OracleRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying per-address recorder.
    pub fn recorder(&self) -> &AccessRecorder {
        &self.rec
    }

    /// Judges every executed site against `safe`, the declared safe set.
    pub fn evaluate(&self, safe: &BTreeSet<SiteId>) -> OracleReport {
        let mut unsound = Vec::new();
        let mut missed = Vec::new();
        for (&site, obs) in &self.site_obs {
            if safe.contains(&site) {
                // Flag each offending address once per site.
                let mut flagged = BTreeSet::new();
                for &(addr, epoch, tid, is_store) in obs {
                    if flagged.contains(&addr) {
                        continue;
                    }
                    let tid = ThreadId(tid);
                    let Some(h) = self.rec.history(Addr::new(addr)) else {
                        continue;
                    };
                    let logically_first =
                        self.logical_writer.get(&addr).map(|&(_, t)| t) == Some(tid.0);
                    let racy = if is_store {
                        h.epoch(epoch).written_by_other(tid) && !logically_first
                    } else {
                        h.epoch(epoch).written_by_other(tid)
                    };
                    if racy {
                        flagged.insert(addr);
                        unsound.push(UnsoundHint {
                            site,
                            addr: Addr::new(addr),
                            kind: if is_store {
                                AccessKind::Store
                            } else {
                                AccessKind::Load
                            },
                            thread: tid,
                            epoch,
                        });
                    }
                }
            } else {
                let provably_private = obs.iter().all(|&(addr, _, _, is_store)| {
                    match self.rec.history(Addr::new(addr)) {
                        Some(h) => h.thread_count() <= 1 || (!is_store && h.never_written()),
                        None => true,
                    }
                });
                if provably_private {
                    missed.push(site);
                }
            }
        }
        OracleReport {
            unsound,
            missed,
            sites_executed: self.site_obs.len(),
            addrs_touched: self.rec.num_addrs(),
        }
    }
}

impl OracleRecorder {
    /// Records one executed memory access.
    pub fn access(&mut self, tid: ThreadId, access: MemAccess, _in_tx: bool) {
        self.rec.record(tid, access.addr, access.kind);
        if access.kind == AccessKind::Store {
            let seq = self.cur_seq.get(&tid.0).copied().unwrap_or(0);
            let e = self
                .logical_writer
                .entry(access.addr.raw())
                .or_insert((seq, tid.0));
            // Strict `<` keeps the earliest-observed writer on replays of
            // the same section (equal seq) and on pre-section accesses.
            if seq < e.0 {
                *e = (seq, tid.0);
            }
        }
        if access.site != SiteId::UNKNOWN {
            self.site_obs.entry(access.site).or_default().insert((
                access.addr.raw(),
                self.rec.epoch(),
                tid.0,
                access.kind == AccessKind::Store,
            ));
        }
    }

    /// Notes that `tid` is about to generate its next section.
    pub fn section_start(&mut self, tid: ThreadId) {
        self.next_seq += 1;
        self.cur_seq.insert(tid.0, self.next_seq);
    }

    /// Notes a barrier release (starts a new sharing epoch).
    pub fn barrier(&mut self) {
        self.rec.advance_epoch();
    }
}

impl TraceSink for OracleRecorder {
    fn event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Access {
                thread,
                access,
                in_tx,
                ..
            } => self.access(thread, access, in_tx),
            TraceEvent::SectionStart { thread, .. } => self.section_start(thread),
            TraceEvent::BarrierRelease { .. } => self.barrier(),
            // Lifecycle, cache and coherence events carry no sharing
            // information the oracle needs.
            _ => {}
        }
    }
}

/// One unsound hint: a declared-safe site observed racing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsoundHint {
    /// The declared-safe site.
    pub site: SiteId,
    /// The raced address.
    pub addr: Addr,
    /// Whether the safe access was a load or a store.
    pub kind: AccessKind,
    /// The thread that executed the safe access.
    pub thread: ThreadId,
    /// The barrier epoch in which the race was observed.
    pub epoch: u32,
}

/// The oracle's verdict for one run.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Declared-safe sites observed racing (one entry per site/address).
    pub unsound: Vec<UnsoundHint>,
    /// Unhinted sites whose every touched address was provably private or
    /// read-only: candidates the static classifier missed.
    pub missed: Vec<SiteId>,
    /// Distinct (hint-carrying) sites that executed.
    pub sites_executed: usize,
    /// Distinct raw addresses the run touched.
    pub addrs_touched: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(addr: u64, site: u32) -> MemAccess {
        MemAccess::load(Addr::new(addr), SiteId(site))
    }
    fn store(addr: u64, site: u32) -> MemAccess {
        MemAccess::store(Addr::new(addr), SiteId(site))
    }

    #[test]
    fn write_write_race_on_safe_site_is_unsound() {
        let mut o = OracleRecorder::new();
        o.access(ThreadId(0), store(0x100, 7), true);
        o.access(ThreadId(1), store(0x100, 7), true);
        let safe = [SiteId(7)].into_iter().collect();
        let r = o.evaluate(&safe);
        // Thread 0 is the first writer (exempt); thread 1 is not.
        assert_eq!(r.unsound.len(), 1);
        assert_eq!(r.unsound[0].thread, ThreadId(1));
        assert_eq!(r.unsound[0].site, SiteId(7));
    }

    #[test]
    fn first_writer_initialization_is_sound() {
        // T0 creates and initializes; T1 reads later in the same epoch
        // (replay overlap). The init store must not be flagged.
        let mut o = OracleRecorder::new();
        o.access(ThreadId(0), store(0x200, 3), true);
        o.access(ThreadId(1), load(0x200, 9), true);
        let safe = [SiteId(3)].into_iter().collect();
        let r = o.evaluate(&safe);
        assert!(r.unsound.is_empty(), "{:?}", r.unsound);
    }

    #[test]
    fn generation_order_beats_execution_order() {
        // T1's section is generated first (its insert creates the node),
        // but T0's later-generated section physically writes the node
        // first (replay overlap). T1's init store is logically first and
        // must stay exempt.
        let mut o = OracleRecorder::new();
        o.section_start(ThreadId(1));
        o.section_start(ThreadId(0));
        o.access(ThreadId(0), store(0x250, 8), true); // link write, unhinted
        o.access(ThreadId(1), store(0x250, 3), true); // init store, safe
        let safe = [SiteId(3)].into_iter().collect();
        let r = o.evaluate(&safe);
        assert!(r.unsound.is_empty(), "{:?}", r.unsound);
    }

    #[test]
    fn safe_load_racing_a_writer_is_unsound() {
        let mut o = OracleRecorder::new();
        o.access(ThreadId(0), load(0x300, 4), true);
        o.access(ThreadId(1), store(0x300, 5), true);
        let safe = [SiteId(4)].into_iter().collect();
        let r = o.evaluate(&safe);
        assert_eq!(r.unsound.len(), 1);
        assert_eq!(r.unsound[0].kind, AccessKind::Load);
    }

    #[test]
    fn barrier_separation_clears_the_race() {
        let mut o = OracleRecorder::new();
        o.access(ThreadId(0), load(0x400, 4), true);
        o.barrier();
        o.access(ThreadId(1), store(0x400, 5), true);
        let safe = [SiteId(4)].into_iter().collect();
        assert!(o.evaluate(&safe).unsound.is_empty());
    }

    #[test]
    fn private_unhinted_site_is_a_missed_hint() {
        let mut o = OracleRecorder::new();
        o.access(ThreadId(2), store(0x500, 11), true);
        o.access(ThreadId(2), load(0x500, 12), true);
        let r = o.evaluate(&BTreeSet::new());
        assert_eq!(r.missed, vec![SiteId(11), SiteId(12)]);
    }

    #[test]
    fn shared_unhinted_site_is_not_missed() {
        let mut o = OracleRecorder::new();
        o.access(ThreadId(0), store(0x600, 11), true);
        o.access(ThreadId(1), store(0x600, 11), true);
        let r = o.evaluate(&BTreeSet::new());
        assert!(r.missed.is_empty());
        assert!(r.unsound.is_empty(), "unhinted sites cannot be unsound");
    }

    #[test]
    fn unknown_sites_are_ignored() {
        let mut o = OracleRecorder::new();
        o.access(ThreadId(0), store(0x700, SiteId::UNKNOWN.0), true);
        let r = o.evaluate(&BTreeSet::new());
        assert_eq!(r.sites_executed, 0);
        assert_eq!(r.addrs_touched, 1, "raw sharing is still recorded");
    }
}
