//! Static capacity-footprint analysis and hint inference — the engine
//! behind `hintm analyze`.
//!
//! Purely static (no simulator run): for one workload module it
//!
//! 1. verifies structural well-formedness,
//! 2. bounds every transaction's read/write cache-block footprint with
//!    the [`hintm_ir::footprint()`] interval analysis and renders a
//!    per-HTM-model verdict (`fits` / `may-overflow` / `must-overflow`),
//! 3. re-infers the safe-site set with [`hintm_ir::classify()`] and diffs
//!    it against the set the workload *declares*, and
//! 4. runs the full lint stack (including the capacity lints) over the
//!    pipeline artifacts.
//!
//! The dynamic ground truth lives elsewhere: the root soundness harness
//! (`tests/analyze_soundness.rs`) checks these static bounds against the
//! read/write-set sizes traced from real runs, and the oracle in
//! [`crate::audit_module`] judges the inferred hints against observed
//! sharing.
//!
//! # Examples
//!
//! ```
//! use hintm_audit::{analyze_workload, Scale};
//! use hintm_ir::{CapacityModel, Verdict};
//!
//! let report = analyze_workload("kmeans", Scale::Sim).unwrap();
//! assert!(report.passed());
//! assert_eq!(report.worst(CapacityModel::P8), Verdict::Fits);
//! ```

use crate::{run_pipeline, Diagnostic, Severity, VerifyError};
use hintm_ir::{Bound, CapacityModel, Module, ModuleFootprint, Verdict};
use hintm_types::SiteId;
use hintm_workloads::Scale;
use std::collections::BTreeSet;

/// The static analysis verdict for one workload.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// Workload (or fixture) name.
    pub workload: String,
    /// Structural IR violations (includes a fixpoint failure, if any).
    pub verify_errors: Vec<VerifyError>,
    /// Per-transaction footprint bounds, in module walk order.
    pub footprint: ModuleFootprint,
    /// Name of the function containing each transaction, parallel to
    /// `footprint.txs` (so consumers need not hold the module).
    pub tx_funcs: Vec<String>,
    /// The safe-site set the workload declares (what the simulator
    /// trusts).
    pub declared: BTreeSet<SiteId>,
    /// The safe-site set the classifier infers from the module today.
    pub inferred: BTreeSet<SiteId>,
    /// Lint findings, deterministically ordered.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalyzeReport {
    /// The worst verdict across the module's transactions for `model`.
    pub fn worst(&self, model: CapacityModel) -> Verdict {
        self.footprint.worst(model)
    }

    /// Number of `Error`-severity lint findings.
    pub fn lint_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity lint findings.
    pub fn lint_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// The analysis passes when the IR verifies and no lint *error*
    /// fired. Warnings (must-overflow transactions, missed hints) are
    /// informational.
    pub fn passed(&self) -> bool {
        self.verify_errors.is_empty() && self.lint_errors() == 0
    }

    /// The golden-able summary of this report.
    pub fn stats(&self) -> AnalyzeStats {
        AnalyzeStats {
            num_txs: self.footprint.txs.len(),
            unbounded_txs: self
                .footprint
                .txs
                .iter()
                .filter(|tx| tx.total_hi == Bound::Unbounded)
                .count(),
            worst: [
                self.worst(CapacityModel::P8),
                self.worst(CapacityModel::P8S),
                self.worst(CapacityModel::L1Tm),
                self.worst(CapacityModel::Lrws),
                self.worst(CapacityModel::PStretch),
            ],
            declared_safe: self.declared.len(),
            inferred_safe: self.inferred.len(),
        }
    }
}

/// Compact, comparable summary of an [`AnalyzeReport`] (golden-tested per
/// workload, like `ClassifyStats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalyzeStats {
    /// Syntactic transactions found.
    pub num_txs: usize,
    /// Transactions whose total upper bound is unbounded.
    pub unbounded_txs: usize,
    /// Worst verdict per model, in [`CapacityModel::ALL`] order
    /// (P8, P8S, L1TM, LRWS, PStretch).
    pub worst: [Verdict; 5],
    /// Declared safe sites.
    pub declared_safe: usize,
    /// Classifier-inferred safe sites.
    pub inferred_safe: usize,
}

/// Analyzes one `(module, declared safe set)` pair statically: verifier,
/// footprint bounds, hint inference diff, lints. No simulator run.
pub fn analyze_module(
    name: &str,
    module: &Module,
    declared_safe: &BTreeSet<SiteId>,
) -> AnalyzeReport {
    let pipeline = run_pipeline(module, declared_safe);
    let tx_funcs = pipeline
        .fp
        .txs
        .iter()
        .map(|tx| module.func(tx.func).name.clone())
        .collect();
    AnalyzeReport {
        workload: name.to_string(),
        verify_errors: pipeline.verify_errors,
        footprint: pipeline.fp,
        tx_funcs,
        declared: declared_safe.clone(),
        inferred: pipeline.inferred,
        diagnostics: pipeline.diagnostics,
    }
}

/// Analyzes one suite workload by name. Returns `None` for unknown
/// names.
pub fn analyze_workload(name: &str, scale: Scale) -> Option<AnalyzeReport> {
    let module = hintm_workloads::ir_module(name, scale)?;
    let workload = hintm_workloads::by_name(name, scale)?;
    let declared: BTreeSet<SiteId> = workload.static_safe_sites().into_iter().collect();
    Some(analyze_module(name, &module, &declared))
}

/// Analyzes every workload in the suite, in the paper's reporting order.
pub fn analyze_all(scale: Scale) -> Vec<AnalyzeReport> {
    hintm_workloads::WORKLOAD_NAMES
        .iter()
        .filter_map(|name| analyze_workload(name, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_fits_every_model_and_is_clean() {
        let r = analyze_workload("kmeans", Scale::Sim).expect("known workload");
        assert!(r.passed(), "diags: {:?}", r.diagnostics);
        for m in CapacityModel::ALL {
            assert_eq!(r.worst(m), Verdict::Fits, "{}", m.name());
        }
        assert_eq!(r.declared, r.inferred, "shipped hints match inference");
    }

    #[test]
    fn labyrinth_must_overflow_p8_but_not_l1tm() {
        let r = analyze_workload("labyrinth", Scale::Sim).expect("known workload");
        assert_eq!(r.worst(CapacityModel::P8), Verdict::MustOverflow);
        assert_eq!(r.worst(CapacityModel::P8S), Verdict::MustOverflow);
        assert_eq!(r.worst(CapacityModel::L1Tm), Verdict::MayOverflow);
        // must-overflow is a warning, not an error: the report still passes.
        assert!(r.passed());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.lint == "capacity-must-overflow"));
    }

    #[test]
    fn tpcc_write_footprint_fits_the_signature_model() {
        for name in ["tpcc-no", "tpcc-p"] {
            let r = analyze_workload(name, Scale::Sim).expect("known workload");
            assert_eq!(r.worst(CapacityModel::P8S), Verdict::Fits, "{name}");
            assert_eq!(r.worst(CapacityModel::P8), Verdict::MayOverflow, "{name}");
        }
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(analyze_workload("nope", Scale::Sim).is_none());
    }

    #[test]
    fn analyze_all_covers_the_suite_deterministically() {
        let a = analyze_all(Scale::Sim);
        let b = analyze_all(Scale::Sim);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats(), y.stats());
            assert_eq!(x.diagnostics, y.diagnostics);
        }
    }
}
