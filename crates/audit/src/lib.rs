//! Soundness tooling for the HinTM reproduction: an IR verifier, a lint
//! framework, and a dynamic sharing oracle.
//!
//! The paper's whole mechanism (§IV-A) rests on one invariant: an access
//! marked *safe* skips HTM conflict tracking, so it must never race. The
//! static classifier is supposed to guarantee that; this crate *proves* it
//! per workload, from two independent directions:
//!
//! 1. **Static** — [`verify()`] checks structural well-formedness of the IR
//!    module (def-before-use, call arity, site density, reachability, TX
//!    pairing) and [`lint`] runs pluggable checks over the classification
//!    pipeline's artifacts against the *declared* safe-site set.
//! 2. **Dynamic** — [`oracle`] replays the workload in the simulator under
//!    an access observer and checks every declared safe site against the
//!    inter-thread sharing the run actually exhibits, reporting unsound
//!    hints (safe site observed racing) and missed hints (provably private
//!    site left unhinted).
//!
//! A third, orthogonal static direction is capacity: [`analyze`] bounds
//! every transaction's cache-block footprint with the
//! [`hintm_ir::footprint()`] interval analysis, gives per-HTM-model
//! fits/may-overflow/must-overflow verdicts, and diffs the declared
//! safe-site set against what the classifier can re-infer.
//!
//! [`audit_workload`] runs both sides for one workload;
//! [`audit_all`] sweeps the whole suite; [`analyze_workload`] runs the
//! static capacity analysis. `hintm audit` and `hintm analyze` are the
//! CLI front ends.
//!
//! # Examples
//!
//! ```
//! use hintm_audit::{audit_workload, Scale};
//!
//! let report = audit_workload("kmeans", Scale::Sim, 42).unwrap();
//! assert!(report.verify_errors.is_empty());
//! assert!(report.unsound.is_empty(), "all shipped hints are sound");
//! ```

pub mod analyze;
pub mod lint;
pub mod oracle;
pub mod verify;

pub use analyze::{analyze_all, analyze_module, analyze_workload, AnalyzeReport, AnalyzeStats};
pub use lint::{default_lints, run_lints, Diagnostic, Lint, LintCtx, Severity};
pub use oracle::{OracleRecorder, OracleReport, UnsoundHint};
pub use verify::{verify, VerifyError};

pub use hintm_workloads::Scale;

use hintm_ir::{
    classify, footprint, points_to, replicate, sharing, verify_fixpoint, ClassifyStats, Module,
    ModuleFootprint, PointsTo, Replication, Sharing,
};
use hintm_sim::{SimConfig, Simulator, Workload};
use hintm_types::SiteId;
use std::collections::BTreeSet;

/// The classification pipeline's artifacts, re-derived for auditing.
///
/// Shared by [`audit_module`] and [`analyze::analyze_module`]: both run
/// the same verifier + pipeline + lint stack, differing only in what they
/// do afterwards (dynamic oracle run vs. footprint reporting).
struct Pipeline {
    verify_errors: Vec<VerifyError>,
    stats: ClassifyStats,
    inferred: BTreeSet<SiteId>,
    fp: ModuleFootprint,
    diagnostics: Vec<Diagnostic>,
}

/// Runs verifier, classification, footprint analysis, and the default
/// lints over `(module, declared_safe)`.
fn run_pipeline(module: &Module, declared_safe: &BTreeSet<SiteId>) -> Pipeline {
    let mut verify_errors = verify::verify(module);

    let classification = classify(module);
    let inferred: BTreeSet<SiteId> = classification.safe_sites().iter().copied().collect();

    // Re-run the pipeline stages to expose their artifacts to the lints.
    let pt0: PointsTo = points_to(module);
    let fp = footprint(module, &pt0);
    let sh0: Sharing = sharing(module, &pt0);
    let (module2, rep): (Module, Replication) = replicate(module, &pt0, &sh0);
    let pt = points_to(&module2);
    let sh = sharing(&module2, &pt);
    if !verify_fixpoint(&module2, &pt) {
        verify_errors.push(VerifyError {
            func: None,
            message: "points-to solution is not a fixpoint".to_string(),
        });
    }

    let ctx = LintCtx {
        original: module,
        module: &module2,
        pt: &pt,
        sh: &sh,
        rep: &rep,
        safe: declared_safe,
        fp: &fp,
        inferred: &inferred,
    };
    let diagnostics = run_lints(&ctx, &default_lints());

    Pipeline {
        verify_errors,
        stats: classification.stats(),
        inferred,
        fp,
        diagnostics,
    }
}

/// The combined audit verdict for one workload.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Workload name.
    pub workload: String,
    /// Structural IR violations (includes a fixpoint failure, if any).
    pub verify_errors: Vec<VerifyError>,
    /// Classification statistics for the workload's module.
    pub stats: ClassifyStats,
    /// Lint findings, deterministically ordered.
    pub diagnostics: Vec<Diagnostic>,
    /// The declared safe set differs from what `classify` produces today
    /// (a stale or hand-edited hint table).
    pub hint_mismatch: bool,
    /// Distinct hint-carrying sites that executed in the observed run.
    pub sites_executed: usize,
    /// Distinct raw addresses the observed run touched.
    pub addrs_touched: usize,
    /// Declared-safe sites observed racing. Must be empty.
    pub unsound: Vec<UnsoundHint>,
    /// Unhinted sites that were provably private at runtime
    /// (informational: static analysis left performance on the table).
    pub missed: Vec<SiteId>,
}

impl AuditReport {
    /// Number of `Error`-severity lint findings.
    pub fn lint_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity lint findings.
    pub fn lint_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// The audit passes when the IR verifies, no lint *errors* fired, the
    /// declared hints match the classifier, and the oracle saw no unsound
    /// hint. Warnings and missed hints are informational.
    pub fn passed(&self) -> bool {
        self.verify_errors.is_empty()
            && self.lint_errors() == 0
            && !self.hint_mismatch
            && self.unsound.is_empty()
    }
}

/// Audits one `(module, declared safe set, workload)` triple: verifier,
/// full pipeline re-analysis, lints, and a dynamically observed run.
///
/// The declared set is audited as-is — it is what the simulator trusts —
/// so a lying or stale set is caught even though `classify` would produce
/// a different one.
pub fn audit_module(
    name: &str,
    module: &Module,
    declared_safe: &BTreeSet<SiteId>,
    workload: &mut dyn Workload,
    seed: u64,
) -> AuditReport {
    let pipeline = run_pipeline(module, declared_safe);
    let hint_mismatch = *declared_safe != pipeline.inferred;

    // Dynamic side: observe one run and judge every executed site.
    let mut obs = OracleRecorder::new();
    Simulator::new(SimConfig::default()).run_with_sink(workload, seed, &mut obs);
    let oracle = obs.evaluate(declared_safe);

    AuditReport {
        workload: name.to_string(),
        verify_errors: pipeline.verify_errors,
        stats: pipeline.stats,
        diagnostics: pipeline.diagnostics,
        hint_mismatch,
        sites_executed: oracle.sites_executed,
        addrs_touched: oracle.addrs_touched,
        unsound: oracle.unsound,
        missed: oracle.missed,
    }
}

/// Audits one suite workload by name. Returns `None` for unknown names.
pub fn audit_workload(name: &str, scale: Scale, seed: u64) -> Option<AuditReport> {
    let module = hintm_workloads::ir_module(name, scale)?;
    let mut workload = hintm_workloads::by_name(name, scale)?;
    let declared: BTreeSet<SiteId> = workload.static_safe_sites().into_iter().collect();
    Some(audit_module(
        name,
        &module,
        &declared,
        workload.as_mut(),
        seed,
    ))
}

/// Audits every workload in the suite, in the paper's reporting order.
pub fn audit_all(scale: Scale, seed: u64) -> Vec<AuditReport> {
    hintm_workloads::WORKLOAD_NAMES
        .iter()
        .filter_map(|name| audit_workload(name, scale, seed))
        .collect()
}
