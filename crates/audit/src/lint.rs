//! Pluggable lints over the static-classification pipeline's artifacts.
//!
//! Each [`Lint`] inspects the original module, the replication-transformed
//! module, the analyses that drove classification, and the *declared*
//! safe-site set (the one the workload actually ships — auditing the
//! declaration, not the classifier's opinion of it, is what catches a
//! hand-edited or stale safe set). Diagnostics come back in a stable
//! order so audit output is byte-identical across runs.

use hintm_ir::{
    CapacityModel, Instr, Module, ModuleFootprint, PointsTo, Replication, Sharing, Stmt, ValueId,
    Verdict,
};
use hintm_types::SiteId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How bad a diagnostic is.
///
/// `Error` means the safe-site set (or the pipeline's own bookkeeping) is
/// inconsistent and the hints cannot be trusted; `Warning` flags suspicious
/// but not necessarily wrong situations (analysis imprecision, inert hint
/// machinery).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious; worth a look, not necessarily wrong.
    Warning,
    /// The hints are inconsistent with the analyses.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that produced this (stable identifier).
    pub lint: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// The function the finding is anchored to.
    pub func: String,
    /// The access site involved, if the finding is site-specific.
    pub site: Option<SiteId>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.lint, self.func, self.message
        )
    }
}

/// Everything a lint may inspect.
pub struct LintCtx<'a> {
    /// The module as the workload built it.
    pub original: &'a Module,
    /// The module after function replication (what classification ran on).
    pub module: &'a Module,
    /// Points-to solution for the transformed module.
    pub pt: &'a PointsTo,
    /// Sharing analysis for the transformed module.
    pub sh: &'a Sharing,
    /// The replication transform's output.
    pub rep: &'a Replication,
    /// The safe-site set the workload *declares* (what the simulator will
    /// trust), not necessarily what `classify` would produce today.
    pub safe: &'a BTreeSet<SiteId>,
    /// Capacity-footprint bounds of the *original* module's transactions.
    pub fp: &'a ModuleFootprint,
    /// The safe-site set `classify` infers from the module today.
    pub inferred: &'a BTreeSet<SiteId>,
}

/// A check over a [`LintCtx`].
pub trait Lint {
    /// Stable identifier (used in diagnostics and for ordering).
    fn name(&self) -> &'static str;
    /// Appends findings to `out`.
    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// The built-in lint set.
pub fn default_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(SafeStoreToShared),
        Box::new(SiteMapHoles),
        Box::new(TopPointsTo),
        Box::new(InertTx),
        Box::new(CapacityMustOverflow),
        Box::new(DeclaredButUninferable),
        Box::new(InferableButUndeclared),
        Box::new(FootprintExceedsDeclared),
    ]
}

/// Runs `lints` over `ctx`, returning findings sorted by
/// `(lint, func, site, message)`.
pub fn run_lints(ctx: &LintCtx<'_>, lints: &[Box<dyn Lint>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for l in lints {
        l.check(ctx, &mut out);
    }
    out.sort_by(|a, b| {
        (a.lint, &a.func, a.site, &a.message).cmp(&(b.lint, &b.func, b.site, &b.message))
    });
    out
}

/// A *declared-safe* store whose pointer may target a shared object that
/// was not allocated inside a transaction.
///
/// The only sound way a store to a shared-reachable object skips conflict
/// tracking is Harris's rule: the object was allocated in the same
/// transaction, so it is unreachable to other threads if the TX aborts
/// (the initialize-then-publish pattern). A safe store whose targets
/// include a shared object allocated *outside* any transaction cannot be
/// justified that way — the hint is a lie waiting for a scheduler.
struct SafeStoreToShared;

impl Lint for SafeStoreToShared {
    fn name(&self) -> &'static str {
        "safe-store-to-shared"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for &fid in &ctx.sh.reachable_thread {
            let fname = &ctx.module.func(fid).name;
            ctx.module.visit_instrs(fid, |i| {
                let (ptr, site) = match i {
                    Instr::Store { ptr, site, .. } => (ptr, site),
                    Instr::Memcpy {
                        dst, store_site, ..
                    } => (dst, store_site),
                    _ => return,
                };
                if !ctx.safe.contains(site) {
                    return;
                }
                for &obj in ctx.pt.pts(fid, *ptr) {
                    if ctx.sh.shared.contains(&obj) && !ctx.pt.obj_info(obj).in_tx {
                        out.push(Diagnostic {
                            lint: self.name(),
                            severity: Severity::Error,
                            func: fname.clone(),
                            site: Some(*site),
                            message: format!(
                                "store site {site} is declared safe but may target \
                                 shared object o{} allocated outside any transaction",
                                obj.0
                            ),
                        });
                        break;
                    }
                }
            });
        }
    }
}

/// A replicated call path whose site map does not cover every access site
/// of the cloned callee.
///
/// The simulator resolves `(call site, original site)` through this map to
/// emit the clone's site ids; a hole means accesses on the safe call path
/// silently fall back to the original (mixed-context, unsafe) site and the
/// replication bought nothing — or worse, inherits the wrong hint.
struct SiteMapHoles;

impl Lint for SiteMapHoles {
    fn name(&self) -> &'static str {
        "site-map-holes"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        // Group the mapped original sites per rewritten call site.
        let mut per_call: BTreeMap<_, BTreeSet<SiteId>> = BTreeMap::new();
        for (cs, orig) in ctx.rep.site_map.keys() {
            per_call.entry(*cs).or_default().insert(*orig);
        }
        for (call_site, mapped) in per_call {
            // Find the call in the original module to learn the callee.
            let mut callee = None;
            for (fid, _) in ctx.original.iter_funcs() {
                ctx.original.visit_instrs(fid, |i| {
                    if let Instr::Call { callee: c, id, .. } = i {
                        if *id == call_site {
                            callee = Some(*c);
                        }
                    }
                });
            }
            let Some(callee) = callee else {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    func: String::new(),
                    site: None,
                    message: format!(
                        "site map references call site {} which does not exist \
                         in the original module",
                        call_site.0
                    ),
                });
                continue;
            };
            let fname = &ctx.original.func(callee).name;
            ctx.original.visit_instrs(callee, |i| {
                let sites: &[SiteId] = match i {
                    Instr::Load { site, .. } | Instr::Store { site, .. } => {
                        std::slice::from_ref(site)
                    }
                    Instr::Memcpy {
                        load_site,
                        store_site,
                        ..
                    } => {
                        for s in [load_site, store_site] {
                            if !mapped.contains(s) {
                                out.push(hole(self.name(), fname, call_site.0, *s));
                            }
                        }
                        return;
                    }
                    _ => return,
                };
                for s in sites {
                    if !mapped.contains(s) {
                        out.push(hole(self.name(), fname, call_site.0, *s));
                    }
                }
            });
        }
    }
}

fn hole(lint: &'static str, func: &str, call_site: u32, site: SiteId) -> Diagnostic {
    Diagnostic {
        lint,
        severity: Severity::Error,
        func: func.to_string(),
        site: Some(site),
        message: format!("replicated call site {call_site} has no clone mapping for site {site}"),
    }
}

/// A pointer value whose points-to set degenerated to ⊤ (every abstract
/// object in the module).
///
/// Andersen's analysis never *fails*; it degrades by saturating. A value
/// that may point to everything makes every access through it unsafe and
/// usually signals a modelling bug in the workload's IR (a merged scratch
/// pointer, a missing `gep` discipline), not a real program property.
struct TopPointsTo;

impl Lint for TopPointsTo {
    fn name(&self) -> &'static str {
        "points-to-top"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        let total = ctx.pt.num_objects();
        if total < 2 {
            return;
        }
        for (fid, f) in ctx.module.iter_funcs() {
            for v in 0..f.num_values as u32 {
                if ctx.pt.pts(fid, ValueId(v)).len() == total {
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        func: f.name.clone(),
                        site: None,
                        message: format!(
                            "value v{v} may point to all {total} abstract objects \
                             (points-to degenerated to top)"
                        ),
                    });
                }
            }
        }
    }
}

/// A transactional function whose accesses are all unhinted.
///
/// Perfectly legitimate for genome-like kernels where everything really is
/// shared — hence a warning, not an error — but worth surfacing: the hint
/// machinery (site tables, replication, per-access flag plumbing) is inert
/// for this transaction, and for most STAMP kernels the paper reports a
/// nonzero safe ratio.
struct InertTx;

impl Lint for InertTx {
    fn name(&self) -> &'static str {
        "inert-tx"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for &fid in &ctx.sh.reachable_thread {
            let f = ctx.module.func(fid);
            let mut tx_sites = Vec::new();
            collect_tx_sites(&f.body, 0, &mut tx_sites);
            if tx_sites.is_empty() {
                continue;
            }
            let safe = tx_sites.iter().filter(|s| ctx.safe.contains(s)).count();
            if safe == 0 {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    func: f.name.clone(),
                    site: None,
                    message: format!(
                        "all {} transactional access sites are unhinted \
                         (safe-site ratio 0; hint machinery is inert here)",
                        tx_sites.len()
                    ),
                });
            }
        }
    }
}

/// A transaction whose *guaranteed* footprint already exceeds a model's
/// capacity: every execution capacity-aborts and runs under the fallback
/// lock, serializing the workload.
///
/// A warning, not an error — the bound can be legitimate (labyrinth's
/// grid copy really is bigger than any HTM buffer; that is the paper's
/// motivating workload) — but it is exactly the transaction the hint
/// mechanism exists to rescue, so it deserves a callout.
struct CapacityMustOverflow;

impl Lint for CapacityMustOverflow {
    fn name(&self) -> &'static str {
        "capacity-must-overflow"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for tx in &ctx.fp.txs {
            let models: Vec<&str> = CapacityModel::ALL
                .iter()
                .filter(|m| m.verdict(tx) == Verdict::MustOverflow)
                .map(|m| m.name())
                .collect();
            if models.is_empty() {
                continue;
            }
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Warning,
                func: ctx.original.func(tx.func).name.clone(),
                site: None,
                message: format!(
                    "transaction #{} is guaranteed to touch {} blocks ({} written): \
                     every execution overflows {}",
                    tx.index,
                    tx.total_lo,
                    tx.write_lo,
                    models.join(", ")
                ),
            });
        }
    }
}

/// A *declared-safe* site the classifier cannot infer today.
///
/// The simulator trusts the declaration unconditionally, so a declared
/// site with no static justification is an unauditable hint — stale after
/// a kernel edit, or hand-planted. Either way the safety argument is
/// gone: hard error.
struct DeclaredButUninferable;

impl Lint for DeclaredButUninferable {
    fn name(&self) -> &'static str {
        "declared-but-uninferable"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for &site in ctx.safe.difference(ctx.inferred) {
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Error,
                func: site_func(ctx.original, site).unwrap_or_default(),
                site: Some(site),
                message: format!(
                    "site {site} is declared safe but the classifier cannot re-derive it"
                ),
            });
        }
    }
}

/// A site the classifier proves safe that the shipped set leaves
/// unhinted.
///
/// Sound but wasteful: the access is tracked by the HTM even though the
/// static argument for skipping it exists, so capacity is left on the
/// table. A warning — typically a stale hint table after the classifier
/// improved.
struct InferableButUndeclared;

impl Lint for InferableButUndeclared {
    fn name(&self) -> &'static str {
        "inferable-but-undeclared"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        for &site in ctx.inferred.difference(ctx.safe) {
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Warning,
                func: site_func(ctx.original, site).unwrap_or_default(),
                site: Some(site),
                message: format!(
                    "site {site} is provably safe but undeclared (capacity left on the table)"
                ),
            });
        }
    }
}

/// A transaction whose guaranteed footprint exceeds the module's own
/// declared capacity budget ([`Module::declared_tx_cap`]).
///
/// The declaration is a contract ("no transaction here needs more than N
/// blocks") that sizing decisions downstream may rely on; a lower bound
/// above it means the contract is provably violated on every execution:
/// hard error.
struct FootprintExceedsDeclared;

impl Lint for FootprintExceedsDeclared {
    fn name(&self) -> &'static str {
        "footprint-exceeds-declared"
    }

    fn check(&self, ctx: &LintCtx<'_>, out: &mut Vec<Diagnostic>) {
        let Some(cap) = ctx.original.declared_tx_cap else {
            return;
        };
        for tx in &ctx.fp.txs {
            if tx.total_lo > cap as u64 {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    func: ctx.original.func(tx.func).name.clone(),
                    site: None,
                    message: format!(
                        "transaction #{} is guaranteed to touch {} blocks, exceeding the \
                         module's declared capacity budget of {cap}",
                        tx.index, tx.total_lo
                    ),
                });
            }
        }
    }
}

/// Name of the function containing `site`, if any.
fn site_func(module: &Module, site: SiteId) -> Option<String> {
    let mut found = None;
    for (fid, f) in module.iter_funcs() {
        module.visit_instrs(fid, |i| {
            let hit = match i {
                Instr::Load { site: s, .. } | Instr::Store { site: s, .. } => *s == site,
                Instr::Memcpy {
                    load_site,
                    store_site,
                    ..
                } => *load_site == site || *store_site == site,
                _ => false,
            };
            if hit {
                found = Some(f.name.clone());
            }
        });
        if found.is_some() {
            break;
        }
    }
    found
}

/// Access sites syntactically inside a transaction.
fn collect_tx_sites(stmts: &[Stmt], depth: u32, out: &mut Vec<SiteId>) {
    let mut depth = depth;
    for s in stmts {
        match s {
            Stmt::Instr(i) => match i {
                Instr::TxBegin => depth += 1,
                Instr::TxEnd => depth = depth.saturating_sub(1),
                Instr::Load { site, .. } | Instr::Store { site, .. } if depth > 0 => {
                    out.push(*site);
                }
                Instr::Memcpy {
                    load_site,
                    store_site,
                    ..
                } if depth > 0 => {
                    out.push(*load_site);
                    out.push(*store_site);
                }
                _ => {}
            },
            Stmt::Loop { body, .. } => collect_tx_sites(body, depth, out),
            Stmt::If(a, b) => {
                collect_tx_sites(a, depth, out);
                collect_tx_sites(b, depth, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hintm_ir::{points_to, replicate, sharing, ModuleBuilder};

    /// worker TX-stores to a global counter; returns (module, store site).
    fn racy_counter() -> (Module, SiteId) {
        let mut m = ModuleBuilder::new();
        let g = m.global("counter");
        let mut w = m.func("worker", 0);
        let ga = w.global_addr(g);
        w.tx_begin();
        let s = w.store(ga);
        w.tx_end();
        w.ret();
        let worker = w.finish();
        let mut main = m.func("main", 0);
        main.spawn(worker, vec![]);
        main.ret();
        let entry = main.finish();
        (m.finish(entry, worker), s)
    }

    fn lint_with(module: &Module, safe: BTreeSet<SiteId>) -> Vec<Diagnostic> {
        let pt0 = points_to(module);
        let fp = hintm_ir::footprint(module, &pt0);
        let inferred: BTreeSet<SiteId> = hintm_ir::classify(module)
            .safe_sites()
            .iter()
            .copied()
            .collect();
        let sh0 = sharing(module, &pt0);
        let (module2, rep) = replicate(module, &pt0, &sh0);
        let pt = points_to(&module2);
        let sh = sharing(&module2, &pt);
        let ctx = LintCtx {
            original: module,
            module: &module2,
            pt: &pt,
            sh: &sh,
            rep: &rep,
            safe: &safe,
            fp: &fp,
            inferred: &inferred,
        };
        run_lints(&ctx, &default_lints())
    }

    #[test]
    fn lying_safe_store_is_an_error() {
        let (module, s) = racy_counter();
        let diags = lint_with(&module, [s].into_iter().collect());
        assert!(diags
            .iter()
            .any(|d| d.lint == "safe-store-to-shared" && d.severity == Severity::Error));
    }

    #[test]
    fn honest_empty_safe_set_only_warns_inert() {
        let (module, _) = racy_counter();
        let diags = lint_with(&module, BTreeSet::new());
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
        assert!(diags.iter().any(|d| d.lint == "inert-tx"));
    }

    #[test]
    fn tx_allocated_publish_is_exempt() {
        // Initialize-then-publish: halloc in TX, safe init store, tracked
        // publish. The init store targets a shared object (it escapes) but
        // the allocation is in-TX — Harris's rule applies, no error.
        let mut m = ModuleBuilder::new();
        let g = m.global("list");
        let mut w = m.func("worker", 0);
        let ga = w.global_addr(g);
        w.tx_begin();
        let node = w.halloc();
        let init = w.store(node);
        w.store_ptr(ga, node);
        w.tx_end();
        w.ret();
        let worker = w.finish();
        let mut main = m.func("main", 0);
        main.spawn(worker, vec![]);
        main.ret();
        let entry = main.finish();
        let module = m.finish(entry, worker);
        let diags = lint_with(&module, [init].into_iter().collect());
        assert!(
            diags.iter().all(|d| d.lint != "safe-store-to-shared"),
            "in-TX allocation exempts the publish pattern: {diags:?}"
        );
    }

    #[test]
    fn guaranteed_overflow_warns_capacity_must_overflow() {
        // A TX memcpy-ing a 100-block buffer must overflow P8 and P8S.
        let mut m = ModuleBuilder::new();
        let mut w = m.func("worker", 0);
        let dst = w.halloc_sized(6400);
        let src = w.halloc_sized(6400);
        w.tx_begin();
        w.memcpy(dst, src);
        w.tx_end();
        w.ret();
        let worker = w.finish();
        let mut main = m.func("main", 0);
        main.spawn(worker, vec![]);
        main.ret();
        let entry = main.finish();
        let module = m.finish(entry, worker);
        let diags = lint_with(&module, BTreeSet::new());
        let d = diags
            .iter()
            .find(|d| d.lint == "capacity-must-overflow")
            .expect("fires");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("P8, P8S"), "{}", d.message);
    }

    #[test]
    fn declared_minus_inferred_is_an_error_and_vice_versa_warns() {
        // worker TX-stores to a private alloca: the classifier infers the
        // site safe. Declaring a different (uninferable) site instead
        // triggers both inference-diff lints.
        let mut m = ModuleBuilder::new();
        let g = m.global("counter");
        let mut w = m.func("worker", 0);
        let buf = w.alloca();
        let ga = w.global_addr(g);
        w.tx_begin();
        let private = w.store(buf);
        let shared = w.store(ga);
        w.tx_end();
        w.ret();
        let worker = w.finish();
        let mut main = m.func("main", 0);
        main.spawn(worker, vec![]);
        main.ret();
        let entry = main.finish();
        let module = m.finish(entry, worker);
        let diags = lint_with(&module, [shared].into_iter().collect());
        assert!(diags.iter().any(|d| d.lint == "declared-but-uninferable"
            && d.severity == Severity::Error
            && d.site == Some(shared)));
        assert!(diags.iter().any(|d| d.lint == "inferable-but-undeclared"
            && d.severity == Severity::Warning
            && d.site == Some(private)));
        // Declaring exactly the inferred set silences both.
        let clean = lint_with(&module, [private].into_iter().collect());
        assert!(clean
            .iter()
            .all(|d| d.lint != "declared-but-uninferable" && d.lint != "inferable-but-undeclared"));
    }

    #[test]
    fn lying_capacity_budget_is_an_error() {
        // The module promises no TX needs more than 4 blocks, then
        // guarantees 8 distinct written blocks in one.
        let mut m = ModuleBuilder::new();
        m.declare_tx_cap(4);
        let mut w = m.func("worker", 0);
        let a = w.halloc_sized(512); // 8 blocks
        let b = w.halloc_sized(512);
        w.tx_begin();
        w.memcpy(a, b);
        w.tx_end();
        w.ret();
        let worker = w.finish();
        let mut main = m.func("main", 0);
        main.spawn(worker, vec![]);
        main.ret();
        let entry = main.finish();
        let module = m.finish(entry, worker);
        let diags = lint_with(&module, BTreeSet::new());
        assert!(diags.iter().any(|d| d.lint == "footprint-exceeds-declared"
            && d.severity == Severity::Error
            && d.message.contains("budget of 4")));
    }

    #[test]
    fn diagnostics_are_sorted_and_stable() {
        let (module, s) = racy_counter();
        let a = lint_with(&module, [s].into_iter().collect());
        let b = lint_with(&module, [s].into_iter().collect());
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_by(|x, y| {
            (x.lint, &x.func, x.site, &x.message).cmp(&(y.lint, &y.func, y.site, &y.message))
        });
        assert_eq!(a, sorted);
    }
}
