//! Golden per-workload footprint bounds and capacity verdicts.
//!
//! Pins the static analysis output the same way
//! `golden_classification.rs` pins `ClassifyStats`: any change to the
//! workload IR modules, the interval lattice, or the per-model verdict
//! thresholds shows up as a diff against these rows and must be reviewed
//! (the soundness harness in `tests/analyze_soundness.rs` separately
//! proves the bounds dominate dynamic behaviour).

use hintm_audit::{analyze_workload, Scale};
use hintm_ir::{Bound, CapacityModel, Verdict};

/// `(read_hi, write_hi, total_hi, total_lo, write_lo)` with `None`
/// standing for an unbounded upper bound.
type TxBounds = (Option<u64>, Option<u64>, Option<u64>, u64, u64);

/// `(workload, per-tx bounds, worst verdict per model in
/// P8/P8S/L1TM/LRWS/PStretch order)`.
const GOLDEN: &[(&str, &[TxBounds], [Verdict; 5])] = {
    use Verdict::{Fits, MayOverflow, MustOverflow};
    &[
        (
            "bayes",
            &[(Some(948), Some(870), Some(954), 2, 2)],
            [
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
            ],
        ),
        (
            "genome",
            &[(None, None, None, 0, 0), (Some(9), Some(9), Some(18), 0, 0)],
            [
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
            ],
        ),
        (
            "intruder",
            &[(Some(1), Some(1), Some(2), 1, 1), (None, None, None, 0, 0)],
            [
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
            ],
        ),
        (
            "kmeans",
            &[(Some(2), Some(1), Some(3), 2, 1)],
            [Fits, Fits, Fits, Fits, Fits],
        ),
        (
            "labyrinth",
            &[(Some(601), Some(403), Some(604), 403, 203)],
            [
                MustOverflow,
                MustOverflow,
                MayOverflow,
                MustOverflow,
                MustOverflow,
            ],
        ),
        (
            "ssca2",
            &[(Some(2), Some(2), Some(4), 2, 1)],
            [Fits, Fits, Fits, Fits, Fits],
        ),
        (
            "vacation",
            &[(Some(3076), Some(3077), Some(3077), 1, 1)],
            [
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
            ],
        ),
        (
            "yada",
            &[(Some(4225), Some(4225), Some(4226), 1, 1)],
            [
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
                MayOverflow,
            ],
        ),
        (
            "tpcc-no",
            &[(Some(65), Some(49), Some(114), 3, 1)],
            [MayOverflow, Fits, MayOverflow, MayOverflow, MayOverflow],
        ),
        (
            "tpcc-p",
            &[(Some(81), Some(5), Some(85), 5, 5)],
            [MayOverflow, Fits, MayOverflow, Fits, Fits],
        ),
    ]
};

fn bound(b: Bound) -> Option<u64> {
    match b {
        Bound::Finite(n) => Some(n),
        Bound::Unbounded => None,
    }
}

#[test]
fn footprint_bounds_match_golden() {
    for &(name, txs, worst) in GOLDEN {
        let r = analyze_workload(name, Scale::Sim).expect("known workload");
        let got: Vec<TxBounds> = r
            .footprint
            .txs
            .iter()
            .map(|tx| {
                (
                    bound(tx.read_hi),
                    bound(tx.write_hi),
                    bound(tx.total_hi),
                    tx.total_lo,
                    tx.write_lo,
                )
            })
            .collect();
        assert_eq!(got, txs, "{name}: per-tx bounds drifted");
        for (model, want) in CapacityModel::ALL.into_iter().zip(worst) {
            assert_eq!(r.worst(model), want, "{name} on {}", model.name());
        }
        assert!(
            r.footprint.txs.iter().all(|tx| tx.balanced),
            "{name}: malformed transaction region"
        );
    }
}

#[test]
fn suite_analyzes_clean_with_hints_in_sync() {
    for &(name, _, _) in GOLDEN {
        let r = analyze_workload(name, Scale::Sim).expect("known workload");
        assert!(r.passed(), "{name}: {:?}", r.diagnostics);
        assert_eq!(r.declared, r.inferred, "{name}: stale hint table");
        assert_eq!(r.stats().num_txs, r.footprint.txs.len());
    }
}
