//! Acceptance sweep: every shipped workload must audit clean — verifier
//! silent, no lint errors, hint table in sync with the classifier, and
//! zero unsound hints observed by the dynamic oracle.

use hintm_audit::{audit_all, Scale};
use hintm_workloads::WORKLOAD_NAMES;

#[test]
fn entire_suite_audits_clean() {
    let reports = audit_all(Scale::Sim, 42);
    assert_eq!(reports.len(), WORKLOAD_NAMES.len());
    for r in &reports {
        assert!(
            r.verify_errors.is_empty(),
            "{}: verifier errors {:?}",
            r.workload,
            r.verify_errors
        );
        assert_eq!(
            r.lint_errors(),
            0,
            "{}: lint errors {:?}",
            r.workload,
            r.diagnostics
        );
        assert!(!r.hint_mismatch, "{}: stale hint table", r.workload);
        assert!(
            r.unsound.is_empty(),
            "{}: unsound hints {:?}",
            r.workload,
            r.unsound
        );
        assert!(r.passed());
        assert!(
            r.sites_executed > 0,
            "{}: the observed run executed no hinted sites",
            r.workload
        );
    }
}

#[test]
fn audits_are_deterministic() {
    let a = audit_workload_digest(7);
    let b = audit_workload_digest(7);
    assert_eq!(a, b, "same seed must produce the same audit verdicts");
}

fn audit_workload_digest(seed: u64) -> Vec<(String, usize, usize, usize)> {
    audit_all(Scale::Sim, seed)
        .into_iter()
        .map(|r| {
            (
                r.workload,
                r.sites_executed,
                r.unsound.len(),
                r.missed.len(),
            )
        })
        .collect()
}
