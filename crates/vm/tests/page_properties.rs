//! Randomized tests of the dynamic classification subsystem: page safety is
//! monotone, shootdowns are singular, and the census never lies (std-only:
//! cases come from the deterministic in-tree generator).

use hintm_types::rng::SmallRng;
use hintm_types::{AccessKind, CoreId, MachineConfig, PageId, ThreadId};
use hintm_vm::{PageState, VmSystem};
use std::collections::{HashMap, HashSet};

/// One random access: (thread/core 0..8, page slot 0..24, is_store).
fn accesses(rng: &mut SmallRng, len_range: std::ops::Range<usize>) -> Vec<(u8, u8, bool)> {
    let n = rng.gen_range(len_range);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..8u8),
                rng.gen_range(0..24u8),
                rng.gen_bool(0.5),
            )
        })
        .collect()
}

/// Once a page is ⟨shared,rw⟩ it never becomes safe again, and each
/// page pays at most one shootdown in its lifetime (§VI-B).
#[test]
fn unsafety_is_sticky_and_shootdowns_singular() {
    let mut rng = SmallRng::seed_from_u64(0x5A5A);
    for round in 0..96 {
        let preserve = round % 2 == 0;
        let mut vm = VmSystem::new(&MachineConfig::default(), preserve);
        let mut went_unsafe: HashSet<PageId> = HashSet::new();
        let mut shootdowns: HashMap<PageId, u32> = HashMap::new();
        for (t, slot, is_store) in accesses(&mut rng, 1..300) {
            let page = PageId::from_index(slot as u64 + 100);
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let r = vm.access(CoreId(t as u32), ThreadId(t as u32), page, kind);
            if let Some(sd) = &r.shootdown {
                assert_eq!(sd.page, page);
                *shootdowns.entry(page).or_default() += 1;
            }
            let state = vm.page_state(page).expect("touched");
            if state == PageState::SharedRw {
                went_unsafe.insert(page);
            }
            if went_unsafe.contains(&page) {
                assert_eq!(vm.page_state(page), Some(PageState::SharedRw));
                assert!(
                    !r.safe_load || kind == AccessKind::Store,
                    "load of an unsafe page classified safe"
                );
            }
        }
        for (page, count) in shootdowns {
            assert_eq!(count, 1, "page {page} shot down more than once");
        }
    }
}

/// A store access is never classified as a safe load, whatever the
/// history (§III-B: dynamic classification never marks writes safe).
#[test]
fn stores_are_never_safe() {
    let mut rng = SmallRng::seed_from_u64(0x5702E);
    for _ in 0..96 {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        for (t, slot, is_store) in accesses(&mut rng, 1..200) {
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let r = vm.access(
                CoreId(t as u32),
                ThreadId(t as u32),
                PageId::from_index(slot as u64),
                kind,
            );
            if is_store {
                assert!(!r.safe_load);
            }
        }
    }
}

/// Single-thread executions never pay a shootdown and all loads stay
/// safe (everything remains ⟨private,*⟩).
#[test]
fn single_thread_never_shoots_down() {
    let mut rng = SmallRng::seed_from_u64(0x0111);
    for _ in 0..96 {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        let n = rng.gen_range(1..200usize);
        for _ in 0..n {
            let slot = rng.gen_range(0..24u8);
            let is_store = rng.gen_bool(0.5);
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let r = vm.access(
                CoreId(0),
                ThreadId(0),
                PageId::from_index(slot as u64),
                kind,
            );
            assert!(r.shootdown.is_none());
            if kind == AccessKind::Load {
                assert!(r.safe_load);
            }
        }
        let (safe, total) = vm.safe_page_census();
        assert_eq!(safe, total);
    }
}

/// The census counts exactly the touched pages, and safe ≤ total.
#[test]
fn census_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0xCE4505);
    for _ in 0..96 {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        let mut touched: HashSet<u64> = HashSet::new();
        for (t, slot, is_store) in accesses(&mut rng, 1..250) {
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            vm.access(
                CoreId(t as u32),
                ThreadId(t as u32),
                PageId::from_index(slot as u64),
                kind,
            );
            touched.insert(slot as u64);
        }
        let (safe, total) = vm.safe_page_census();
        assert_eq!(total, touched.len() as u64);
        assert!(safe <= total);
    }
}

/// `peek_load_safe` predicts exactly what the next access reports, and
/// never mutates state.
#[test]
fn peek_is_a_pure_oracle() {
    let mut rng = SmallRng::seed_from_u64(0x9EE4);
    for _ in 0..96 {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        for (t, slot, is_store) in accesses(&mut rng, 1..150) {
            let page = PageId::from_index(slot as u64);
            let tid = ThreadId(t as u32);
            let predicted = vm.peek_load_safe(tid, page);
            let before = vm.page_state(page);
            assert_eq!(vm.page_state(page), before, "peek mutated state");
            if !is_store {
                let r = vm.access(CoreId(t as u32), tid, page, AccessKind::Load);
                assert_eq!(r.safe_load, predicted);
            } else {
                vm.access(CoreId(t as u32), tid, page, AccessKind::Store);
            }
        }
    }
}
