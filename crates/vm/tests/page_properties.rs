//! Property tests of the dynamic classification subsystem: page safety is
//! monotone, shootdowns are singular, and the census never lies.

use hintm_types::{AccessKind, CoreId, MachineConfig, PageId, ThreadId};
use hintm_vm::{PageState, VmSystem};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn arb_access() -> impl Strategy<Value = (u8, u8, bool)> {
    // (thread/core 0..8, page slot 0..24, is_store)
    (0u8..8, 0u8..24, any::<bool>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Once a page is ⟨shared,rw⟩ it never becomes safe again, and each
    /// page pays at most one shootdown in its lifetime (§VI-B).
    #[test]
    fn unsafety_is_sticky_and_shootdowns_singular(
        accesses in prop::collection::vec(arb_access(), 1..300),
        preserve in any::<bool>(),
    ) {
        let mut vm = VmSystem::new(&MachineConfig::default(), preserve);
        let mut went_unsafe: HashSet<PageId> = HashSet::new();
        let mut shootdowns: HashMap<PageId, u32> = HashMap::new();
        for (t, slot, is_store) in accesses {
            let page = PageId::from_index(slot as u64 + 100);
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            let r = vm.access(CoreId(t as u32), ThreadId(t as u32), page, kind);
            if let Some(sd) = &r.shootdown {
                prop_assert_eq!(sd.page, page);
                *shootdowns.entry(page).or_default() += 1;
            }
            let state = vm.page_state(page).expect("touched");
            if state == PageState::SharedRw {
                went_unsafe.insert(page);
            }
            if went_unsafe.contains(&page) {
                prop_assert_eq!(vm.page_state(page), Some(PageState::SharedRw));
                prop_assert!(!r.safe_load || kind == AccessKind::Store,
                    "load of an unsafe page classified safe");
            }
        }
        for (page, count) in shootdowns {
            prop_assert_eq!(count, 1, "page {} shot down more than once", page);
        }
    }

    /// A store access is never classified as a safe load, whatever the
    /// history (§III-B: dynamic classification never marks writes safe).
    #[test]
    fn stores_are_never_safe(accesses in prop::collection::vec(arb_access(), 1..200)) {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        for (t, slot, is_store) in accesses {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            let r = vm.access(CoreId(t as u32), ThreadId(t as u32), PageId::from_index(slot as u64), kind);
            if is_store {
                prop_assert!(!r.safe_load);
            }
        }
    }

    /// Single-thread executions never pay a shootdown and all loads stay
    /// safe (everything remains ⟨private,*⟩).
    #[test]
    fn single_thread_never_shoots_down(ops in prop::collection::vec((0u8..24, any::<bool>()), 1..200)) {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        for (slot, is_store) in ops {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            let r = vm.access(CoreId(0), ThreadId(0), PageId::from_index(slot as u64), kind);
            prop_assert!(r.shootdown.is_none());
            if kind == AccessKind::Load {
                prop_assert!(r.safe_load);
            }
        }
        let (safe, total) = vm.safe_page_census();
        prop_assert_eq!(safe, total);
    }

    /// The census counts exactly the touched pages, and safe ≤ total.
    #[test]
    fn census_is_exact(accesses in prop::collection::vec(arb_access(), 1..250)) {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        let mut touched: HashSet<u64> = HashSet::new();
        for (t, slot, is_store) in accesses {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            vm.access(CoreId(t as u32), ThreadId(t as u32), PageId::from_index(slot as u64), kind);
            touched.insert(slot as u64);
        }
        let (safe, total) = vm.safe_page_census();
        prop_assert_eq!(total, touched.len() as u64);
        prop_assert!(safe <= total);
    }

    /// `peek_load_safe` predicts exactly what the next access reports, and
    /// never mutates state.
    #[test]
    fn peek_is_a_pure_oracle(accesses in prop::collection::vec(arb_access(), 1..150)) {
        let mut vm = VmSystem::new(&MachineConfig::default(), false);
        for (t, slot, is_store) in accesses {
            let page = PageId::from_index(slot as u64);
            let tid = ThreadId(t as u32);
            let predicted = vm.peek_load_safe(tid, page);
            let before = vm.page_state(page);
            prop_assert_eq!(vm.page_state(page), before, "peek mutated state");
            if !is_store {
                let r = vm.access(CoreId(t as u32), tid, page, AccessKind::Load);
                prop_assert_eq!(r.safe_load, predicted);
            } else {
                vm.access(CoreId(t as u32), tid, page, AccessKind::Store);
            }
        }
    }
}
