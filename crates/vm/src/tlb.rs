//! A per-core TLB caching translations plus HinTM's page safety bits.

use hintm_types::PageId;

/// Empty-slot sentinel; page indices never reach it.
const EMPTY: u64 = u64::MAX;

/// Multiplier for the Fibonacci-style multiplicative hash (2⁶⁴/φ).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fully-associative LRU TLB.
///
/// Only presence matters to the model: a hit avoids the page-walk latency
/// and, on a safe→unsafe page transition, the set of cores whose TLB holds
/// the page determines the shootdown's slave set.
///
/// Internally an open-addressed table sized to twice the entry capacity
/// (the TLB is probed on every memory access, so lookups avoid `HashMap`'s
/// SipHash). LRU ticks are unique per TLB, so victim selection by minimum
/// tick is deterministic.
///
/// # Examples
///
/// ```
/// use hintm_vm::Tlb;
/// use hintm_types::PageId;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.lookup(PageId::from_index(1)));
/// tlb.install(PageId::from_index(1));
/// assert!(tlb.lookup(PageId::from_index(1)));
/// tlb.install(PageId::from_index(2));
/// tlb.install(PageId::from_index(3)); // evicts page 1 (LRU)
/// assert!(!tlb.contains(PageId::from_index(1)));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    keys: Vec<u64>,
    lrus: Vec<u64>,
    mask: usize,
    shift: u32,
    len: usize,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        let slots = (capacity * 2).next_power_of_two();
        Tlb {
            keys: vec![EMPTY; slots],
            lrus: vec![0; slots],
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    #[inline]
    fn slot_of(&self, key: u64) -> (usize, bool) {
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return (i, true);
            }
            if k == EMPTY {
                return (i, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up `page`, updating LRU order and hit/miss counters.
    pub fn lookup(&mut self, page: PageId) -> bool {
        self.tick += 1;
        let (i, hit) = self.slot_of(page.index());
        if hit {
            self.lrus[i] = self.tick;
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Returns `true` if `page` is cached (no LRU/counter side effects).
    pub fn contains(&self, page: PageId) -> bool {
        self.slot_of(page.index()).1
    }

    /// Installs `page`, evicting the LRU entry if full.
    pub fn install(&mut self, page: PageId) {
        self.tick += 1;
        let (i, hit) = self.slot_of(page.index());
        if hit {
            self.lrus[i] = self.tick;
            return;
        }
        if self.len >= self.capacity {
            // Ticks are unique, so the minimum is a single deterministic
            // victim regardless of slot order.
            let victim = (0..=self.mask)
                .filter(|&j| self.keys[j] != EMPTY)
                .min_by_key(|&j| self.lrus[j])
                .expect("full TLB has entries");
            self.remove_slot(victim);
            // The removal may have shifted entries through `page`'s chain;
            // re-probe for the insertion slot.
            let (i, hit) = self.slot_of(page.index());
            debug_assert!(!hit);
            self.keys[i] = page.index();
            self.lrus[i] = self.tick;
            self.len += 1;
            return;
        }
        self.keys[i] = page.index();
        self.lrus[i] = self.tick;
        self.len += 1;
    }

    /// Drops `page` (shootdown). Returns `true` if it was present.
    pub fn invalidate(&mut self, page: PageId) -> bool {
        let (i, hit) = self.slot_of(page.index());
        if hit {
            self.remove_slot(i);
        }
        hit
    }

    /// Backward-shift removal keeping every probe chain gap-free.
    fn remove_slot(&mut self, mut hole: usize) {
        self.keys[hole] = EMPTY;
        self.len -= 1;
        let mut j = (hole + 1) & self.mask;
        while self.keys[j] != EMPTY {
            let home = self.home(self.keys[j]);
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(hole) & self.mask) {
                self.keys[hole] = self.keys[j];
                self.lrus[hole] = self.lrus[j];
                self.keys[j] = EMPTY;
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
    }

    /// Drops everything (full TLB flush).
    pub fn flush(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached translations.
    pub fn occupancy(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pg(i: u64) -> PageId {
        PageId::from_index(i)
    }

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4);
        assert!(!t.lookup(pg(1)));
        t.install(pg(1));
        assert!(t.lookup(pg(1)));
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.install(pg(1));
        t.install(pg(2));
        t.lookup(pg(1)); // 1 is MRU
        t.install(pg(3));
        assert!(t.contains(pg(1)));
        assert!(!t.contains(pg(2)));
        assert!(t.contains(pg(3)));
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn reinstall_does_not_evict() {
        let mut t = Tlb::new(2);
        t.install(pg(1));
        t.install(pg(2));
        t.install(pg(1)); // refresh, no eviction
        assert!(t.contains(pg(2)));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(4);
        t.install(pg(1));
        t.install(pg(2));
        assert!(t.invalidate(pg(1)));
        assert!(!t.invalidate(pg(1)));
        t.flush();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn colliding_pages_survive_eviction_chains() {
        // Many installs over a tiny TLB force evictions through shared
        // probe chains; the survivor set must match LRU order exactly.
        let mut t = Tlb::new(4);
        for i in 0..64u64 {
            t.install(pg(i));
        }
        assert_eq!(t.occupancy(), 4);
        for i in 0..60u64 {
            assert!(!t.contains(pg(i)), "page {i} should have been evicted");
        }
        for i in 60..64u64 {
            assert!(t.contains(pg(i)), "page {i} is among the 4 most recent");
        }
    }
}
