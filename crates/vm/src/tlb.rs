//! A per-core TLB caching translations plus HinTM's page safety bits.

use hintm_types::PageId;
use std::collections::HashMap;

/// A fully-associative LRU TLB.
///
/// Only presence matters to the model: a hit avoids the page-walk latency
/// and, on a safe→unsafe page transition, the set of cores whose TLB holds
/// the page determines the shootdown's slave set.
///
/// # Examples
///
/// ```
/// use hintm_vm::Tlb;
/// use hintm_types::PageId;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.lookup(PageId::from_index(1)));
/// tlb.install(PageId::from_index(1));
/// assert!(tlb.lookup(PageId::from_index(1)));
/// tlb.install(PageId::from_index(2));
/// tlb.install(PageId::from_index(3)); // evicts page 1 (LRU)
/// assert!(!tlb.contains(PageId::from_index(1)));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: HashMap<PageId, u64>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            entries: HashMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `page`, updating LRU order and hit/miss counters.
    pub fn lookup(&mut self, page: PageId) -> bool {
        self.tick += 1;
        if let Some(lru) = self.entries.get_mut(&page) {
            *lru = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Returns `true` if `page` is cached (no LRU/counter side effects).
    pub fn contains(&self, page: PageId) -> bool {
        self.entries.contains_key(&page)
    }

    /// Installs `page`, evicting the LRU entry if full.
    pub fn install(&mut self, page: PageId) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&page) {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &lru)| lru) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(page, self.tick);
    }

    /// Drops `page` (shootdown). Returns `true` if it was present.
    pub fn invalidate(&mut self, page: PageId) -> bool {
        self.entries.remove(&page).is_some()
    }

    /// Drops everything (full TLB flush).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached translations.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pg(i: u64) -> PageId {
        PageId::from_index(i)
    }

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4);
        assert!(!t.lookup(pg(1)));
        t.install(pg(1));
        assert!(t.lookup(pg(1)));
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.install(pg(1));
        t.install(pg(2));
        t.lookup(pg(1)); // 1 is MRU
        t.install(pg(3));
        assert!(t.contains(pg(1)));
        assert!(!t.contains(pg(2)));
        assert!(t.contains(pg(3)));
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn reinstall_does_not_evict() {
        let mut t = Tlb::new(2);
        t.install(pg(1));
        t.install(pg(2));
        t.install(pg(1)); // refresh, no eviction
        assert!(t.contains(pg(2)));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(4);
        t.install(pg(1));
        t.install(pg(2));
        assert!(t.invalidate(pg(1)));
        assert!(!t.invalidate(pg(1)));
        t.flush();
        assert_eq!(t.occupancy(), 0);
    }
}
