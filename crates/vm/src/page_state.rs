//! The Fig. 2 page state machine.

use hintm_types::{AccessKind, ThreadId};
use std::fmt;

/// The HinTM page-table extension state of one page: the paper's
/// `{tid, ro, shared}` fields (§IV-B), with "untouched" represented by the
/// page being absent from the table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PageState {
    /// Accessed only by `owner`, read-only so far.
    PrivateRo(ThreadId),
    /// Accessed only by `owner`, written at least once.
    PrivateRw(ThreadId),
    /// Read by multiple threads, never written since becoming shared.
    SharedRo,
    /// Read-write shared: unsafe, terminal.
    SharedRw,
}

impl PageState {
    /// Is a **load** by `tid` of a page in this state safe (§III-B)?
    pub fn load_is_safe(self, tid: ThreadId) -> bool {
        match self {
            PageState::PrivateRo(o) | PageState::PrivateRw(o) => o == tid,
            PageState::SharedRo => true,
            PageState::SharedRw => false,
        }
    }

    /// Is the page in a safe state for *some* reader (Fig. 1's safe-page
    /// census)?
    pub fn is_safe_page(self) -> bool {
        !matches!(self, PageState::SharedRw)
    }
}

impl fmt::Display for PageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageState::PrivateRo(t) => write!(f, "<private({t}),ro>"),
            PageState::PrivateRw(t) => write!(f, "<private({t}),rw>"),
            PageState::SharedRo => write!(f, "<shared,ro>"),
            PageState::SharedRw => write!(f, "<shared,rw>"),
        }
    }
}

/// Page safety as seen by the TLB for one accessing thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageSafety {
    /// Loads of this page by this thread are safe.
    SafeForLoads,
    /// The page must be tracked normally.
    Unsafe,
}

/// The side effect of applying one access to the state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transition {
    /// No state change (or first touch).
    None,
    /// ⟨private,ro⟩ → ⟨private,rw⟩ by the owner: minor page fault
    /// (1450 cycles, §V).
    MinorFault,
    /// A benign downgrade to ⟨shared,ro⟩: no abort, no shootdown.
    ToSharedRo,
    /// Safe → unsafe (→ ⟨shared,rw⟩): TLB shootdown plus page-mode abort of
    /// every active TX that safely touched the page.
    ToSharedRw,
}

/// Applies an access by `tid` to a page in `state` (or `None` if untouched).
///
/// Returns the new state and the transition event. `preserve` enables the
/// §VI-B optimization (remote reads of ⟨private,rw⟩ downgrade to
/// ⟨shared,ro⟩ instead of going unsafe).
pub fn step(
    state: Option<PageState>,
    tid: ThreadId,
    kind: AccessKind,
    preserve: bool,
) -> (PageState, Transition) {
    use PageState::*;
    match state {
        None => match kind {
            AccessKind::Load => (PrivateRo(tid), Transition::None),
            AccessKind::Store => (PrivateRw(tid), Transition::None),
        },
        Some(PrivateRo(o)) if o == tid => match kind {
            AccessKind::Load => (PrivateRo(o), Transition::None),
            AccessKind::Store => (PrivateRw(o), Transition::MinorFault),
        },
        Some(PrivateRo(_)) => match kind {
            AccessKind::Load => (SharedRo, Transition::ToSharedRo),
            AccessKind::Store => (SharedRw, Transition::ToSharedRw),
        },
        Some(PrivateRw(o)) if o == tid => (PrivateRw(o), Transition::None),
        Some(PrivateRw(_)) => {
            if preserve && kind == AccessKind::Load {
                (SharedRo, Transition::ToSharedRo)
            } else {
                (SharedRw, Transition::ToSharedRw)
            }
        }
        Some(SharedRo) => match kind {
            AccessKind::Load => (SharedRo, Transition::None),
            AccessKind::Store => (SharedRw, Transition::ToSharedRw),
        },
        Some(SharedRw) => (SharedRw, Transition::None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PageState::*;

    const X: ThreadId = ThreadId(0);
    const Y: ThreadId = ThreadId(1);

    #[test]
    fn first_touch_sets_private() {
        assert_eq!(
            step(None, X, AccessKind::Load, false),
            (PrivateRo(X), Transition::None)
        );
        assert_eq!(
            step(None, X, AccessKind::Store, false),
            (PrivateRw(X), Transition::None)
        );
    }

    #[test]
    fn owner_write_of_ro_page_minor_faults() {
        assert_eq!(
            step(Some(PrivateRo(X)), X, AccessKind::Store, false),
            (PrivateRw(X), Transition::MinorFault)
        );
    }

    #[test]
    fn owner_accesses_stay_private() {
        assert_eq!(
            step(Some(PrivateRo(X)), X, AccessKind::Load, false),
            (PrivateRo(X), Transition::None)
        );
        assert_eq!(
            step(Some(PrivateRw(X)), X, AccessKind::Load, false),
            (PrivateRw(X), Transition::None)
        );
        assert_eq!(
            step(Some(PrivateRw(X)), X, AccessKind::Store, false),
            (PrivateRw(X), Transition::None)
        );
    }

    #[test]
    fn remote_read_of_ro_page_shares_safely() {
        assert_eq!(
            step(Some(PrivateRo(X)), Y, AccessKind::Load, false),
            (SharedRo, Transition::ToSharedRo)
        );
    }

    #[test]
    fn remote_write_of_ro_page_goes_unsafe() {
        assert_eq!(
            step(Some(PrivateRo(X)), Y, AccessKind::Store, false),
            (SharedRw, Transition::ToSharedRw)
        );
    }

    #[test]
    fn remote_access_of_rw_page_goes_unsafe_by_default() {
        assert_eq!(
            step(Some(PrivateRw(X)), Y, AccessKind::Load, false),
            (SharedRw, Transition::ToSharedRw)
        );
        assert_eq!(
            step(Some(PrivateRw(X)), Y, AccessKind::Store, false),
            (SharedRw, Transition::ToSharedRw)
        );
    }

    #[test]
    fn preserve_downgrades_remote_read_of_rw_page() {
        assert_eq!(
            step(Some(PrivateRw(X)), Y, AccessKind::Load, true),
            (SharedRo, Transition::ToSharedRo)
        );
        // Writes still go unsafe even with preserve.
        assert_eq!(
            step(Some(PrivateRw(X)), Y, AccessKind::Store, true),
            (SharedRw, Transition::ToSharedRw)
        );
    }

    #[test]
    fn shared_ro_write_goes_unsafe() {
        assert_eq!(
            step(Some(SharedRo), X, AccessKind::Store, false),
            (SharedRw, Transition::ToSharedRw)
        );
        assert_eq!(
            step(Some(SharedRo), Y, AccessKind::Load, false),
            (SharedRo, Transition::None)
        );
    }

    #[test]
    fn shared_rw_is_terminal() {
        for kind in [AccessKind::Load, AccessKind::Store] {
            for tid in [X, Y] {
                assert_eq!(
                    step(Some(SharedRw), tid, kind, true),
                    (SharedRw, Transition::None)
                );
            }
        }
    }

    #[test]
    fn load_safety_by_state() {
        assert!(PrivateRo(X).load_is_safe(X));
        assert!(!PrivateRo(X).load_is_safe(Y));
        assert!(PrivateRw(X).load_is_safe(X));
        assert!(!PrivateRw(X).load_is_safe(Y));
        assert!(SharedRo.load_is_safe(X) && SharedRo.load_is_safe(Y));
        assert!(!SharedRw.load_is_safe(X));
    }

    #[test]
    fn safe_page_census() {
        assert!(PrivateRo(X).is_safe_page());
        assert!(PrivateRw(X).is_safe_page());
        assert!(SharedRo.is_safe_page());
        assert!(!SharedRw.is_safe_page());
    }

    #[test]
    fn display_nonempty() {
        for s in [PrivateRo(X), PrivateRw(X), SharedRo, SharedRw] {
            assert!(!s.to_string().is_empty());
        }
    }

    #[test]
    fn at_most_one_unsafe_transition_per_page() {
        // Walk a page through its whole life; count ToSharedRw events.
        let mut state: Option<PageState> = None;
        let seq = [
            (X, AccessKind::Load),
            (X, AccessKind::Store),
            (Y, AccessKind::Load),
            (Y, AccessKind::Store),
            (X, AccessKind::Store),
            (Y, AccessKind::Load),
        ];
        let mut unsafe_transitions = 0;
        for (t, k) in seq {
            let (next, tr) = step(state, t, k, false);
            if tr == Transition::ToSharedRw {
                unsafe_transitions += 1;
            }
            state = Some(next);
        }
        assert_eq!(unsafe_transitions, 1);
    }
}
