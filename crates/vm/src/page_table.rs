//! A flat, insert-only page table: open addressing plus a last-slot cache.
//!
//! `VmSystem::access` consults and updates the page state machine on
//! *every* memory access, and the `HashMap<PageId, PageState>` it used to
//! sit on paid two SipHash probes (get + insert) per access. This table
//! replaces them with one multiplicative-hash probe, and a one-entry
//! last-slot cache short-circuits even that for the common case of
//! consecutive accesses landing on the same page. Pages are never removed
//! (state machines only move forward), which keeps slots stable between
//! growths and the probe loop free of tombstone handling.

use crate::page_state::PageState;
use hintm_types::PageId;

/// Empty-slot sentinel; page indices are byte addresses shifted right by
/// 12, so the maximum index is unreachable.
const EMPTY: u64 = u64::MAX;

/// Multiplier for the Fibonacci-style multiplicative hash (2⁶⁴/φ).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

const MIN_SLOTS: usize = 64;

/// Open-addressed map from [`PageId`] to [`PageState`].
#[derive(Clone, Debug)]
pub struct PageTable {
    keys: Vec<u64>,
    vals: Vec<PageState>,
    mask: usize,
    shift: u32,
    len: usize,
    /// Slot of the most recently touched page (`usize::MAX` = cold).
    last: usize,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    pub fn new() -> Self {
        PageTable {
            keys: vec![EMPTY; MIN_SLOTS],
            // Placeholder value for empty slots; never read through them.
            vals: vec![PageState::SharedRw; MIN_SLOTS],
            mask: MIN_SLOTS - 1,
            shift: 64 - MIN_SLOTS.trailing_zeros(),
            len: 0,
            last: usize::MAX,
        }
    }

    /// Number of touched pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no page has been touched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> (usize, bool) {
        let mut i = (key.wrapping_mul(HASH_MUL) >> self.shift) as usize;
        loop {
            let k = self.keys[i];
            if k == key {
                return (i, true);
            }
            if k == EMPTY {
                return (i, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Current state of `page`, if touched.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<PageState> {
        let key = page.index();
        if self.last != usize::MAX && self.keys[self.last] == key {
            return Some(self.vals[self.last]);
        }
        let (i, hit) = self.slot_of(key);
        hit.then(|| self.vals[i])
    }

    /// Reads the current state of `page` and stores `f(current)` back, all
    /// in a single probe. Returns the state that was stored.
    #[inline]
    pub fn update(
        &mut self,
        page: PageId,
        f: impl FnOnce(Option<PageState>) -> PageState,
    ) -> PageState {
        let key = page.index();
        if self.last != usize::MAX && self.keys[self.last] == key {
            let after = f(Some(self.vals[self.last]));
            self.vals[self.last] = after;
            return after;
        }
        let (i, hit) = self.slot_of(key);
        if hit {
            let after = f(Some(self.vals[i]));
            self.vals[i] = after;
            self.last = i;
            return after;
        }
        let after = f(None);
        if (self.len + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
            let (j, _) = self.slot_of(key);
            self.fill(j, key, after);
        } else {
            self.fill(i, key, after);
        }
        after
    }

    #[inline]
    fn fill(&mut self, i: usize, key: u64, val: PageState) {
        self.keys[i] = key;
        self.vals[i] = val;
        self.len += 1;
        self.last = i;
    }

    fn grow(&mut self) {
        let slots = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![PageState::SharedRw; slots]);
        self.mask = slots - 1;
        self.shift = 64 - slots.trailing_zeros();
        self.last = usize::MAX;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let (i, hit) = self.slot_of(k);
                debug_assert!(!hit);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    /// Visits every touched page's state.
    pub fn for_each(&self, mut f: impl FnMut(PageId, PageState)) {
        for (k, v) in self.keys.iter().zip(&self.vals) {
            if *k != EMPTY {
                f(PageId::from_index(*k), *v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hintm_types::ThreadId;

    fn pg(i: u64) -> PageId {
        PageId::from_index(i)
    }

    #[test]
    fn update_inserts_then_mutates() {
        let mut t = PageTable::new();
        assert_eq!(t.get(pg(7)), None);
        let st = t.update(pg(7), |prev| {
            assert_eq!(prev, None);
            PageState::PrivateRo(ThreadId(3))
        });
        assert_eq!(st, PageState::PrivateRo(ThreadId(3)));
        let st = t.update(pg(7), |prev| {
            assert_eq!(prev, Some(PageState::PrivateRo(ThreadId(3))));
            PageState::SharedRo
        });
        assert_eq!(st, PageState::SharedRo);
        assert_eq!(t.get(pg(7)), Some(PageState::SharedRo));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn survives_growth() {
        let mut t = PageTable::new();
        for i in 0..10_000u64 {
            t.update(pg(i * 31), |_| {
                if i % 2 == 0 {
                    PageState::SharedRo
                } else {
                    PageState::SharedRw
                }
            });
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            let want = if i % 2 == 0 {
                PageState::SharedRo
            } else {
                PageState::SharedRw
            };
            assert_eq!(t.get(pg(i * 31)), Some(want), "page {i}");
        }
    }

    #[test]
    fn for_each_visits_all_pages() {
        let mut t = PageTable::new();
        for i in 0..200u64 {
            t.update(pg(i), |_| PageState::SharedRo);
        }
        let mut n = 0;
        t.for_each(|_, st| {
            assert_eq!(st, PageState::SharedRo);
            n += 1;
        });
        assert_eq!(n, 200);
    }
}
