//! Offline sharing profiler for the Fig. 1 motivation metrics.
//!
//! Classifies memory *regions* (cache blocks or pages) over a whole
//! execution: a region is **safe** if it never experiences read-write
//! sharing between two or more threads (§II-B). Also counts the fraction of
//! transactional read accesses that target safe regions.

use hintm_types::{AccessKind, Addr, ThreadId};
use std::collections::HashMap;

#[derive(Clone, Copy, Debug, Default)]
struct RegionInfo {
    readers: u64, // thread bitmask
    writers: u64, // thread bitmask
}

impl RegionInfo {
    /// No read-write sharing: at most one thread ever accessed it, or it
    /// was only ever read.
    fn is_safe(&self) -> bool {
        let all = self.readers | self.writers;
        all.count_ones() <= 1 || self.writers == 0
    }
}

/// Records every access of a run at block and page granularity and reports
/// the Fig. 1 metrics.
///
/// # Examples
///
/// ```
/// use hintm_vm::SharingProfiler;
/// use hintm_types::{AccessKind, Addr, ThreadId};
///
/// let mut p = SharingProfiler::new();
/// p.record(ThreadId(0), Addr::new(0x1000), AccessKind::Load, true);
/// p.record(ThreadId(1), Addr::new(0x1000), AccessKind::Load, true);
/// // Read-only sharing is safe.
/// assert_eq!(p.safe_page_fraction(), 1.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharingProfiler {
    blocks: HashMap<u64, RegionInfo>,
    pages: HashMap<u64, RegionInfo>,
    tx_reads: u64,
    tx_reads_safe_page: u64,
    tx_reads_safe_block: u64,
    tx_read_log: Vec<(u64, u64)>, // (block, page) of each transactional read
}

impl SharingProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access. `in_tx` marks accesses made inside transactions
    /// (only those count toward the safe-read-access metrics).
    pub fn record(&mut self, tid: ThreadId, addr: Addr, kind: AccessKind, in_tx: bool) {
        let bit = 1u64 << (tid.index() as u64 % 64);
        let block = addr.block().index();
        let page = addr.page().index();
        for (map, key) in [(&mut self.blocks, block), (&mut self.pages, page)] {
            let info = map.entry(key).or_default();
            match kind {
                AccessKind::Load => info.readers |= bit,
                AccessKind::Store => info.writers |= bit,
            }
        }
        if in_tx && kind == AccessKind::Load {
            self.tx_reads += 1;
            self.tx_read_log.push((block, page));
        }
    }

    /// Finalizes the safe-read counters against the *final* region
    /// classification (the paper's metric is over the whole execution).
    /// Call once after the run; also called implicitly by the getters.
    fn finalize(&mut self) {
        if self.tx_read_log.is_empty() {
            return;
        }
        for (block, page) in self.tx_read_log.drain(..) {
            if self.blocks.get(&block).is_some_and(RegionInfo::is_safe) {
                self.tx_reads_safe_block += 1;
            }
            if self.pages.get(&page).is_some_and(RegionInfo::is_safe) {
                self.tx_reads_safe_page += 1;
            }
        }
    }

    /// Fraction of touched 64 B blocks that are safe over the execution.
    pub fn safe_block_fraction(&self) -> f64 {
        frac(
            self.blocks.values().filter(|r| r.is_safe()).count(),
            self.blocks.len(),
        )
    }

    /// Fraction of touched 4 KiB pages that are safe over the execution.
    pub fn safe_page_fraction(&self) -> f64 {
        frac(
            self.pages.values().filter(|r| r.is_safe()).count(),
            self.pages.len(),
        )
    }

    /// Fraction of transactional reads that target safe pages.
    pub fn safe_tx_read_fraction_page(&mut self) -> f64 {
        self.finalize();
        frac(self.tx_reads_safe_page as usize, self.tx_reads as usize)
    }

    /// Fraction of transactional reads that target safe blocks.
    pub fn safe_tx_read_fraction_block(&mut self) -> f64 {
        self.finalize();
        frac(self.tx_reads_safe_block as usize, self.tx_reads as usize)
    }

    /// Total transactional reads recorded.
    pub fn tx_reads(&self) -> u64 {
        self.tx_reads
    }
}

fn frac(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: ThreadId = ThreadId(0);
    const Y: ThreadId = ThreadId(1);

    #[test]
    fn private_regions_are_safe() {
        let mut p = SharingProfiler::new();
        p.record(X, Addr::new(0x1000), AccessKind::Store, true);
        p.record(X, Addr::new(0x1000), AccessKind::Load, true);
        assert_eq!(p.safe_page_fraction(), 1.0);
        assert_eq!(p.safe_block_fraction(), 1.0);
    }

    #[test]
    fn read_write_sharing_is_unsafe() {
        let mut p = SharingProfiler::new();
        p.record(X, Addr::new(0x1000), AccessKind::Store, true);
        p.record(Y, Addr::new(0x1000), AccessKind::Load, true);
        assert_eq!(p.safe_page_fraction(), 0.0);
    }

    #[test]
    fn read_only_sharing_is_safe() {
        let mut p = SharingProfiler::new();
        p.record(X, Addr::new(0x1000), AccessKind::Load, true);
        p.record(Y, Addr::new(0x1000), AccessKind::Load, true);
        assert_eq!(p.safe_page_fraction(), 1.0);
    }

    #[test]
    fn block_and_page_granularity_differ() {
        let mut p = SharingProfiler::new();
        // Same page, different blocks: X writes block 0, Y writes block 1.
        p.record(X, Addr::new(0x1000), AccessKind::Store, true);
        p.record(Y, Addr::new(0x1040), AccessKind::Store, true);
        assert_eq!(p.safe_block_fraction(), 1.0, "each block single-writer");
        assert_eq!(p.safe_page_fraction(), 0.0, "page is write-shared");
    }

    #[test]
    fn tx_read_fractions_use_final_classification() {
        let mut p = SharingProfiler::new();
        // X reads a page inside a TX; later Y writes it → retroactively unsafe.
        p.record(X, Addr::new(0x2000), AccessKind::Load, true);
        p.record(Y, Addr::new(0x2000), AccessKind::Store, false);
        assert_eq!(p.safe_tx_read_fraction_page(), 0.0);
        assert_eq!(p.tx_reads(), 1);
    }

    #[test]
    fn non_tx_reads_do_not_count() {
        let mut p = SharingProfiler::new();
        p.record(X, Addr::new(0x2000), AccessKind::Load, false);
        assert_eq!(p.tx_reads(), 0);
        assert_eq!(p.safe_tx_read_fraction_page(), 0.0);
    }

    #[test]
    fn mixed_fractions() {
        let mut p = SharingProfiler::new();
        p.record(X, Addr::new(0x1000), AccessKind::Load, true); // safe page
        p.record(X, Addr::new(0x2000), AccessKind::Load, true); // becomes unsafe
        p.record(Y, Addr::new(0x2000), AccessKind::Store, true);
        assert!((p.safe_page_fraction() - 0.5).abs() < 1e-12);
        assert!((p.safe_tx_read_fraction_page() - 0.5).abs() < 1e-12);
    }
}
