//! The full VM system: page table + per-core TLBs + cost accounting.

use crate::page_state::{step, PageState, Transition};
use crate::page_table::PageTable;
use crate::tlb::Tlb;
use hintm_types::{AccessKind, CoreId, Cycles, MachineConfig, PageId, ThreadId};

/// A safe→unsafe page transition requiring a TLB shootdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shootdown {
    /// The page that turned unsafe.
    pub page: PageId,
    /// Cores (other than the initiator) whose TLB cached the page; each
    /// pays the slave cost and any active TX that safely touched the page
    /// must page-mode abort (enforced by the simulator).
    pub slave_cores: Vec<CoreId>,
}

/// The VM outcome of one memory access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmAccess {
    /// Dynamic classification verdict: a **load** of this page by this
    /// thread is safe. Stores are never dynamically safe (§III-B).
    pub safe_load: bool,
    /// Translation cost charged to the accessing core (page walk and/or
    /// minor fault; shootdown initiator cost is included here too).
    pub cost: Cycles,
    /// Present when the access turned the page unsafe.
    pub shootdown: Option<Shootdown>,
}

/// Aggregate VM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// TLB misses (page walks).
    pub page_walks: u64,
    /// ⟨private,ro⟩→⟨private,rw⟩ minor faults.
    pub minor_faults: u64,
    /// Safe→unsafe transitions (TLB shootdowns).
    pub shootdowns: u64,
    /// Benign downgrades to ⟨shared,ro⟩.
    pub downgrades: u64,
    /// Loads classified safe.
    pub safe_loads: u64,
    /// Loads classified unsafe.
    pub unsafe_loads: u64,
}

/// Memo of a core's most recent translation, validated against the global
/// table [`VmSystem::version`]. See [`VmSystem::access`] for the exact
/// equivalence argument.
#[derive(Clone, Copy, Debug)]
struct CoreMemo {
    page: PageId,
    tid: ThreadId,
    version: u64,
    state: PageState,
}

/// The process-wide VM state: the extended page table and per-core TLBs.
///
/// See the crate docs for an example.
#[derive(Clone, Debug)]
pub struct VmSystem {
    table: PageTable,
    tlbs: Vec<Tlb>,
    preserve: bool,
    page_walk_latency: Cycles,
    minor_fault_cost: Cycles,
    shootdown_initiator_cost: Cycles,
    shootdown_slave_cost: Cycles,
    stats: VmStats,
    /// Bumped whenever any page's table state changes; memos from older
    /// versions are dead.
    version: u64,
    /// Per-core last-translation memo (the repeated-access fast path).
    memos: Vec<Option<CoreMemo>>,
}

impl VmSystem {
    /// Creates the VM system for `cfg.num_cores` cores. `preserve` enables
    /// the §VI-B gentle-downgrade optimization.
    pub fn new(cfg: &MachineConfig, preserve: bool) -> Self {
        VmSystem {
            table: PageTable::new(),
            tlbs: (0..cfg.num_cores)
                .map(|_| Tlb::new(cfg.tlb_entries))
                .collect(),
            preserve,
            page_walk_latency: cfg.page_walk_latency,
            minor_fault_cost: cfg.minor_fault_cost,
            shootdown_initiator_cost: cfg.shootdown_initiator_cost,
            shootdown_slave_cost: cfg.shootdown_slave_cost,
            stats: VmStats::default(),
            version: 0,
            memos: vec![None; cfg.num_cores],
        }
    }

    /// The per-slave-core shootdown cost (charged by the simulator to each
    /// core in [`Shootdown::slave_cores`]).
    pub fn slave_cost(&self) -> Cycles {
        self.shootdown_slave_cost
    }

    /// Whether preserve mode is on.
    pub fn preserve(&self) -> bool {
        self.preserve
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Current state of `page` (`None` = untouched).
    pub fn page_state(&self, page: PageId) -> Option<PageState> {
        self.table.get(page)
    }

    /// Census over all touched pages: `(safe_pages, total_pages)` (Fig. 1).
    pub fn safe_page_census(&self) -> (u64, u64) {
        let total = self.table.len() as u64;
        let mut safe = 0u64;
        self.table.for_each(|_, s| safe += s.is_safe_page() as u64);
        (safe, total)
    }

    /// Translates one access by `tid` running on `core`, stepping the page
    /// state machine and charging TLB/fault costs.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: CoreId,
        tid: ThreadId,
        page: PageId,
        kind: AccessKind,
    ) -> VmAccess {
        // Fast path: this core's immediately preceding access hit the same
        // (page, tid) and no page anywhere has changed state since. The
        // memo then holds the page's exact current state; if stepping it
        // is a no-op (the state machine is a fixed point for repeated
        // identical accesses), the slow path below would charge zero cost
        // — the TLB entry is still resident and MRU (this core performed
        // no other access since installing/touching it, and any remote
        // invalidation implies a `ToSharedRw` transition, which bumps the
        // version) — so only the load-classification counters remain.
        // Skipping the TLB's MRU re-touch is unobservable: relative LRU
        // order, which alone determines evictions, is unchanged.
        if let Some(m) = self.memos[core.index()] {
            if m.page == page && m.tid == tid && m.version == self.version {
                let (after, t) = step(Some(m.state), tid, kind, self.preserve);
                if t == Transition::None {
                    debug_assert_eq!(after, m.state);
                    let safe_load = kind == AccessKind::Load && after.load_is_safe(tid);
                    if kind == AccessKind::Load {
                        if safe_load {
                            self.stats.safe_loads += 1;
                        } else {
                            self.stats.unsafe_loads += 1;
                        }
                    }
                    return VmAccess {
                        safe_load,
                        cost: Cycles::ZERO,
                        shootdown: None,
                    };
                }
            }
        }

        let mut cost = Cycles::ZERO;
        let tlb_hit = self.tlbs[core.index()].lookup(page);

        let mut transition = Transition::None;
        let after = self.table.update(page, |before| {
            let (after, t) = step(before, tid, kind, self.preserve);
            transition = t;
            after
        });
        if transition != Transition::None {
            self.version += 1;
        }

        // A state transition invalidates any cached (now stale) entry; the
        // access then behaves like a TLB miss for cost purposes.
        let effective_hit = tlb_hit && transition == Transition::None;
        if !effective_hit {
            cost += self.page_walk_latency;
            self.stats.page_walks += 1;
            self.tlbs[core.index()].install(page);
        }

        let mut shootdown = None;
        match transition {
            Transition::None => {}
            Transition::MinorFault => {
                cost += self.minor_fault_cost;
                self.stats.minor_faults += 1;
            }
            Transition::ToSharedRo => {
                self.stats.downgrades += 1;
            }
            Transition::ToSharedRw => {
                self.stats.shootdowns += 1;
                cost += self.shootdown_initiator_cost;
                let mut slaves = Vec::new();
                for (i, tlb) in self.tlbs.iter_mut().enumerate() {
                    if i == core.index() {
                        continue;
                    }
                    if tlb.invalidate(page) {
                        slaves.push(CoreId(i as u32));
                    }
                }
                shootdown = Some(Shootdown {
                    page,
                    slave_cores: slaves,
                });
            }
        }

        let safe_load = kind == AccessKind::Load && after.load_is_safe(tid);
        if kind == AccessKind::Load {
            if safe_load {
                self.stats.safe_loads += 1;
            } else {
                self.stats.unsafe_loads += 1;
            }
        }

        self.memos[core.index()] = Some(CoreMemo {
            page,
            tid,
            version: self.version,
            state: after,
        });

        VmAccess {
            safe_load,
            cost,
            shootdown,
        }
    }

    /// Peeks at the dynamic verdict for a load without side effects
    /// (classification queries outside the timed path).
    pub fn peek_load_safe(&self, tid: ThreadId, page: PageId) -> bool {
        let (after, _) = step(self.table.get(page), tid, AccessKind::Load, self.preserve);
        after.load_is_safe(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(preserve: bool) -> VmSystem {
        VmSystem::new(&MachineConfig::default(), preserve)
    }

    fn pg(i: u64) -> PageId {
        PageId::from_index(i)
    }

    const X: ThreadId = ThreadId(0);
    const Y: ThreadId = ThreadId(1);
    const CX: CoreId = CoreId(0);
    const CY: CoreId = CoreId(1);

    #[test]
    fn first_touch_costs_a_page_walk() {
        let mut vm = mk(false);
        let a = vm.access(CX, X, pg(1), AccessKind::Load);
        assert_eq!(a.cost, Cycles(30));
        assert!(a.safe_load);
        let b = vm.access(CX, X, pg(1), AccessKind::Load);
        assert_eq!(b.cost, Cycles::ZERO, "TLB hit is free");
    }

    #[test]
    fn owner_write_minor_faults_once() {
        let mut vm = mk(false);
        vm.access(CX, X, pg(1), AccessKind::Load);
        let a = vm.access(CX, X, pg(1), AccessKind::Store);
        assert_eq!(
            a.cost,
            Cycles(30 + 1450),
            "walk (stale entry) + minor fault"
        );
        assert_eq!(vm.stats().minor_faults, 1);
        let b = vm.access(CX, X, pg(1), AccessKind::Store);
        assert_eq!(b.cost, Cycles::ZERO);
        assert!(!a.safe_load && !b.safe_load, "stores are never safe");
    }

    #[test]
    fn remote_write_triggers_shootdown_with_slaves() {
        let mut vm = mk(false);
        vm.access(CX, X, pg(1), AccessKind::Load); // X caches the page
        let a = vm.access(CY, Y, pg(1), AccessKind::Store);
        let sd = a.shootdown.expect("shootdown");
        assert_eq!(sd.page, pg(1));
        assert_eq!(sd.slave_cores, vec![CX]);
        assert_eq!(a.cost, Cycles(30 + 6600));
        assert_eq!(vm.page_state(pg(1)), Some(PageState::SharedRw));
        // X's TLB entry is gone.
        let b = vm.access(CX, X, pg(1), AccessKind::Load);
        assert_eq!(b.cost, Cycles(30));
        assert!(!b.safe_load);
    }

    #[test]
    fn shared_ro_reads_are_safe_for_everyone() {
        let mut vm = mk(false);
        vm.access(CX, X, pg(1), AccessKind::Load);
        let a = vm.access(CY, Y, pg(1), AccessKind::Load);
        assert!(a.safe_load);
        assert!(a.shootdown.is_none());
        assert_eq!(vm.page_state(pg(1)), Some(PageState::SharedRo));
        assert_eq!(vm.stats().downgrades, 1);
    }

    #[test]
    fn default_mode_remote_read_of_written_page_shoots_down() {
        let mut vm = mk(false);
        vm.access(CX, X, pg(1), AccessKind::Store);
        let a = vm.access(CY, Y, pg(1), AccessKind::Load);
        assert!(a.shootdown.is_some());
        assert!(!a.safe_load);
    }

    #[test]
    fn preserve_mode_downgrades_instead() {
        let mut vm = mk(true);
        vm.access(CX, X, pg(1), AccessKind::Store);
        let a = vm.access(CY, Y, pg(1), AccessKind::Load);
        assert!(a.shootdown.is_none());
        assert!(a.safe_load);
        assert_eq!(vm.page_state(pg(1)), Some(PageState::SharedRo));
        // A later write still forces the unsafe transition.
        let b = vm.access(CX, X, pg(1), AccessKind::Store);
        assert!(b.shootdown.is_some());
    }

    #[test]
    fn census_counts_safe_pages() {
        let mut vm = mk(false);
        vm.access(CX, X, pg(1), AccessKind::Load); // private-ro: safe
        vm.access(CX, X, pg(2), AccessKind::Store); // private-rw: safe
        vm.access(CX, X, pg(3), AccessKind::Load);
        vm.access(CY, Y, pg(3), AccessKind::Store); // shared-rw: unsafe
        assert_eq!(vm.safe_page_census(), (2, 3));
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut vm = mk(false);
        vm.access(CX, X, pg(1), AccessKind::Store);
        assert!(!vm.peek_load_safe(Y, pg(1)));
        assert_eq!(
            vm.page_state(pg(1)),
            Some(PageState::PrivateRw(X)),
            "peek left state alone"
        );
        assert!(vm.peek_load_safe(X, pg(1)));
    }

    #[test]
    fn stats_track_load_classification() {
        let mut vm = mk(false);
        vm.access(CX, X, pg(1), AccessKind::Load);
        vm.access(CY, Y, pg(2), AccessKind::Store);
        vm.access(CX, X, pg(2), AccessKind::Load); // unsafe load (shared-rw after transition)
        let s = vm.stats();
        assert_eq!(s.safe_loads, 1);
        assert_eq!(s.unsafe_loads, 1);
        assert_eq!(s.shootdowns, 1);
    }
}
