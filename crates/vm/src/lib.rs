//! Virtual-memory subsystem for the HinTM reproduction.
//!
//! Implements the paper's §III-B / §IV-B dynamic classification mechanism:
//! the process page table is extended with per-page `{owner tid, read-only,
//! shared}` state, per-core TLBs cache translations together with the
//! derived safety bits, and pages walk the Fig. 2 state machine as threads
//! access them:
//!
//! ```text
//!            first read            first write
//!  untouched ──────────► ⟨private,ro⟩   untouched ─────► ⟨private,rw⟩
//!  ⟨private,ro⟩ ──owner write (minor fault, 1450 cyc)──► ⟨private,rw⟩
//!  ⟨private,ro⟩ ──other thread read──► ⟨shared,ro⟩          (still safe)
//!  ⟨private,ro⟩ ──other thread write─► ⟨shared,rw⟩  + TLB shootdown
//!  ⟨private,rw⟩ ──other thread access► ⟨shared,rw⟩  + TLB shootdown
//!  ⟨shared,ro⟩  ──any write──────────► ⟨shared,rw⟩  + TLB shootdown
//! ```
//!
//! Reads of a `⟨private,*⟩` page (by its owner) or of a `⟨shared,ro⟩` page
//! are *safe* and skip HTM tracking; `⟨shared,rw⟩` is sticky-unsafe (each
//! page transitions to unsafe at most once, §VI-B). Safe→unsafe transitions
//! cost a TLB shootdown — 6600 cycles on the initiator and 1450 on each
//! core caching the translation (§V) — and must page-mode-abort every
//! active transaction that touched the page while it was safe (the
//! simulator enforces that part).
//!
//! The optional *preserve* mode models the §VI-B optimization probed for
//! vacation: a remote **read** of a `⟨private,rw⟩` page downgrades it to
//! `⟨shared,ro⟩` without a shootdown or aborts (sound because dynamic
//! classification never marks stores safe, so all prior writes to the page
//! were tracked); only writes force the unsafe transition.
//!
//! # Examples
//!
//! ```
//! use hintm_vm::{PageSafety, VmSystem};
//! use hintm_types::{AccessKind, Addr, CoreId, MachineConfig, ThreadId};
//!
//! let mut vm = VmSystem::new(&MachineConfig::default(), false);
//! let page = Addr::new(0x8000).page();
//! let a = vm.access(CoreId(0), ThreadId(0), page, AccessKind::Load);
//! assert!(a.safe_load, "first toucher reads its private page safely");
//! let b = vm.access(CoreId(1), ThreadId(1), page, AccessKind::Store);
//! assert!(b.shootdown.is_some(), "remote write makes the page unsafe");
//! ```

pub mod page_state;
pub mod page_table;
pub mod profiler;
pub mod system;
pub mod tlb;

pub use page_state::{PageSafety, PageState, Transition};
pub use page_table::PageTable;
pub use profiler::SharingProfiler;
pub use system::{Shootdown, VmAccess, VmStats, VmSystem};
pub use tlb::Tlb;
