//! Integration tests for the sweep orchestrator: parallel-vs-serial
//! determinism, cache-hit correctness (a second run re-simulates nothing),
//! and per-cell panic isolation.

use hintm::{HintMode, HtmKind, RunReport};
use hintm_runner::{Cache, Cell, CellOutcome, Runner, SweepResult, SweepSpec};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hintm-runner-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small but real grid: two fast workloads, baseline vs full hints,
/// two seeds.
fn grid() -> Vec<Cell> {
    SweepSpec::new()
        .workloads(["ssca2", "kmeans"])
        .htm(HtmKind::P8)
        .hints([HintMode::Off, HintMode::Full])
        .seeds([42, 7])
        .cells()
}

/// Serializes a sweep's results to one string (cell keys + full reports),
/// the bit-identity witness used by the determinism test.
fn fingerprint(result: &SweepResult) -> String {
    result
        .cells
        .iter()
        .map(|r| match &r.outcome {
            CellOutcome::Done(report) => format!("{}={}\n", r.cell.key(), report.to_json()),
            CellOutcome::Crashed(msg) => format!("{}=CRASHED:{msg}\n", r.cell.key()),
        })
        .collect()
}

#[test]
fn parallel_run_is_bit_identical_to_serial() {
    let cells = grid();
    let serial = Runner::new().no_cache().jobs(1).run(&cells);
    let parallel = Runner::new().no_cache().jobs(8).run(&cells);
    assert_eq!(serial.jobs, 1);
    assert_eq!(serial.executed, cells.len());
    assert_eq!(parallel.executed, cells.len());
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    // The artifact tables derived from them are bit-identical too.
    assert_eq!(
        hintm_runner::results_csv(&serial),
        hintm_runner::results_csv(&parallel)
    );
}

#[test]
fn warm_cache_rerun_simulates_nothing() {
    let dir = tmp("warm");
    let cells = grid();
    let executions = AtomicUsize::new(0);
    let exec = |cell: &Cell| -> RunReport {
        executions.fetch_add(1, Ordering::Relaxed);
        cell.run().unwrap()
    };

    let runner = Runner::new().cache(Cache::new(&dir)).jobs(4);
    let cold = runner.run_with(&cells, exec);
    assert_eq!(executions.load(Ordering::Relaxed), cells.len());
    assert_eq!((cold.executed, cold.cache_hits), (cells.len(), 0));

    let warm = runner.run_with(&cells, exec);
    assert_eq!(
        executions.load(Ordering::Relaxed),
        cells.len(),
        "warm run re-simulated"
    );
    assert_eq!((warm.executed, warm.cache_hits), (0, cells.len()));
    assert!(warm.cells.iter().all(|r| r.cached));
    assert_eq!(fingerprint(&cold), fingerprint(&warm));

    // An interrupted sweep resumes: drop half the cache, only that half
    // re-simulates.
    let cache = Cache::new(&dir);
    for cell in &cells[..4] {
        fs::remove_file(cache.path_for(cell)).unwrap();
    }
    let resumed = runner.run_with(&cells, exec);
    assert_eq!((resumed.executed, resumed.cache_hits), (4, cells.len() - 4));
    assert_eq!(executions.load(Ordering::Relaxed), cells.len() + 4);
    assert_eq!(fingerprint(&cold), fingerprint(&resumed));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn no_cache_runner_touches_no_disk() {
    let dir = tmp("nocache");
    std::env::set_var("HINTM_CACHE_DIR", &dir); // would be used if caching leaked in
    let result = Runner::new().no_cache().jobs(2).run(&grid()[..2]);
    std::env::remove_var("HINTM_CACHE_DIR");
    assert_eq!(result.cache_hits, 0);
    assert!(!dir.exists(), "no-cache run created {}", dir.display());
}

#[test]
fn a_crashing_cell_is_isolated() {
    let cells = grid();
    let poison = cells[2].key();
    let exec = |cell: &Cell| -> RunReport {
        if cell.key() == poison {
            panic!("injected failure in {}", cell.label());
        }
        cell.run().unwrap()
    };
    let result = Runner::new().no_cache().jobs(4).run_with(&cells, exec);
    assert_eq!(result.crashed, 1);
    assert_eq!(result.executed, cells.len() - 1);
    for r in &result.cells {
        match &r.outcome {
            CellOutcome::Crashed(msg) => {
                assert_eq!(r.cell.key(), poison);
                assert!(
                    msg.contains("injected failure"),
                    "lost panic message: {msg}"
                );
            }
            CellOutcome::Done(report) => assert!(report.stats.commits > 0),
        }
    }
    // The lookup API reflects the crash.
    assert!(result.report(&cells[2]).is_none());
    assert!(result.report(&cells[0]).is_some());
}

#[test]
fn unknown_workload_crashes_its_cell_only() {
    let cells = vec![Cell::new("ssca2"), Cell::new("not-a-workload")];
    let result = Runner::new().no_cache().jobs(2).run(&cells);
    assert!(result.report(&cells[0]).is_some());
    let CellOutcome::Crashed(msg) = &result.cells[1].outcome else {
        panic!("unknown workload should crash its cell");
    };
    assert!(msg.contains("not-a-workload"));
}

#[test]
fn traced_sweep_exports_streams_and_changes_no_stats() {
    let dir = tmp("trace");
    let cells = &grid()[..2];
    let trace_dir = dir.join("traces");
    let traced = Runner::new().no_cache().jobs(2).run_with(cells, |cell| {
        let (report, rec) = cell.run_traced(4096).unwrap();
        hintm_runner::write_trace(&trace_dir, cell, &rec.events()).unwrap();
        report
    });
    let plain = Runner::new().no_cache().jobs(2).run(cells);
    for (t, p) in traced.cells.iter().zip(&plain.cells) {
        let (tr, pr) = (t.report().unwrap(), p.report().unwrap());
        assert!(tr.trace.is_some(), "traced report carries the summary");
        assert!(pr.trace.is_none());
        // Tracing is passive: the simulation outcome is bit-identical.
        assert_eq!(format!("{:?}", tr.stats), format!("{:?}", pr.stats));
    }
    // Each traced cell exported a Chrome JSON and a binary log.
    let mut exported: Vec<String> = fs::read_dir(&trace_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    exported.sort();
    assert_eq!(exported.len(), 4);
    assert_eq!(
        exported
            .iter()
            .filter(|n| n.ends_with(".trace.bin"))
            .count(),
        2
    );
    assert_eq!(
        exported
            .iter()
            .filter(|n| n.ends_with(".trace.json"))
            .count(),
        2
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crashed_cells_are_never_cached() {
    let dir = tmp("crashcache");
    let cell = Cell::new("ssca2");
    let runner = Runner::new().cache(Cache::new(&dir)).jobs(1);
    let crashed = runner.run_with(std::slice::from_ref(&cell), |_| panic!("boom"));
    assert_eq!(crashed.crashed, 1);
    assert!(Cache::new(&dir).load(&cell).is_none());

    // The cell heals on the next run and only then enters the cache.
    let healed = runner.run_with(std::slice::from_ref(&cell), |c| c.run().unwrap());
    assert_eq!((healed.executed, healed.crashed), (1, 0));
    assert!(Cache::new(&dir).load(&cell).is_some());
    fs::remove_dir_all(&dir).unwrap();
}
