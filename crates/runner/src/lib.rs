//! # hintm-runner — parallel sweep orchestration with an on-disk cache
//!
//! The reproduction's experiment space is a grid: `(workload, HTM kind,
//! hint mode, input scale, seed)`. Every figure harness and the CLI used
//! to walk their slice of that grid serially and from scratch. This crate
//! factors the walking out (std-only, no new dependencies):
//!
//! * [`SweepSpec`] / [`Cell`] — enumerate a sweep's cells (cross product,
//!   stable order, deduplicated);
//! * [`Runner`] — a sharded executor on `std::thread` + channels with a
//!   configurable job count, per-cell `catch_unwind` panic isolation and
//!   wall-time accounting;
//! * [`Cache`] — a content-addressed result cache under `.hintm-cache/`:
//!   a stable hash of the full cell configuration plus a schema version
//!   addresses one JSON file per result, so re-running a sweep only
//!   simulates what changed and an interrupted sweep resumes for free;
//! * [`write_artifacts`] — sweep manifest + CSV/JSON result tables,
//!   bit-identical whatever the job count.
//!
//! The `hintm` binary (in the `hintm-serve` crate, which layers a
//! sweep-as-a-service daemon over this executor) fronts it with
//! `hintm sweep`, `hintm serve` and `hintm cache clear|stats`; the figure
//! harnesses in `hintm-bench` feed their cell grids through
//! [`Runner::from_env`], so `HINTM_JOBS=8` parallelizes figure
//! regeneration and a warm cache makes reruns instant.
//!
//! ```no_run
//! use hintm::{HintMode, HtmKind};
//! use hintm_runner::{Runner, SweepSpec};
//!
//! let cells = SweepSpec::new()
//!     .workloads(["vacation", "labyrinth"])
//!     .htm(HtmKind::P8)
//!     .hints([HintMode::Off, HintMode::Full])
//!     .seeds([1, 2, 3])
//!     .cells();
//! let result = Runner::new().jobs(8).progress(true).run(&cells);
//! for (cell, report) in result.reports() {
//!     println!("{} -> {} cycles", cell.label(), report.stats.total_cycles);
//! }
//! ```

mod artifacts;
mod cache;
mod exec;
pub mod perf;
mod spec;

pub use artifacts::{cell_to_json, results_csv, results_json, write_artifacts, write_trace};
pub use cache::{Cache, CacheStats, WorkloadCacheStats, SCHEMA_VERSION};
pub use exec::{CellOutcome, CellResult, Runner, SweepResult};
pub use spec::{Cell, SweepSpec};
