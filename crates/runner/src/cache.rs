//! Content-addressed on-disk result cache.
//!
//! Each cached entry is one JSON file under the cache directory, named by
//! an FNV-1a hash of the schema version plus the cell's canonical
//! [`key`](crate::Cell::key). The file stores the schema, the full key,
//! and the serialized [`RunReport`]; on load both the schema and the key
//! are re-checked, so a hash collision, a stale schema, or a corrupt file
//! all degrade to a cache miss — never to a wrong result.
//!
//! The cache is safe for concurrent writers in one or many processes:
//! every store writes to a uniquely-named temp file (pid + sequence
//! number) and atomically renames it into place, so readers only ever see
//! complete entries; two writers racing on the same cell both publish a
//! whole file and the later rename wins with an identical result. A
//! reader racing a [`Cache::clear`] sees a missing entry, which is just a
//! miss — the cell re-runs.

use crate::Cell;
use hintm::{Json, RunReport};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the cached-entry format AND of anything that feeds the
/// simulated numbers. Bump it whenever reports change meaning (new stats
/// fields, simulator behavior changes) to invalidate every prior entry.
pub const SCHEMA_VERSION: u32 = 2;

/// 64-bit FNV-1a. Collisions are harmless (the stored key is re-checked),
/// so a small fast non-cryptographic hash is enough.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A result cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct Cache {
    dir: PathBuf,
    schema: u32,
}

impl Cache {
    /// A cache at `dir` with the current [`SCHEMA_VERSION`].
    pub fn new(dir: impl Into<PathBuf>) -> Cache {
        Cache::with_schema(dir, SCHEMA_VERSION)
    }

    /// A cache at `dir` pinned to an explicit schema version. Exposed so
    /// tests can prove a schema bump invalidates old entries; production
    /// code should use [`Cache::new`].
    pub fn with_schema(dir: impl Into<PathBuf>, schema: u32) -> Cache {
        Cache {
            dir: dir.into(),
            schema,
        }
    }

    /// The default cache directory: `$HINTM_CACHE_DIR`, or `.hintm-cache`
    /// in the current directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("HINTM_CACHE_DIR")
            .map_or_else(|| PathBuf::from(".hintm-cache"), PathBuf::from)
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a cell's result lives at.
    pub fn path_for(&self, cell: &Cell) -> PathBuf {
        let addressed = format!("schema={}|{}", self.schema, cell.key());
        self.dir
            .join(format!("{:016x}.json", fnv1a(addressed.as_bytes())))
    }

    /// Loads a cell's cached report. Any mismatch — missing file, parse
    /// failure, wrong schema, wrong key — is a miss.
    pub fn load(&self, cell: &Cell) -> Option<RunReport> {
        let text = fs::read_to_string(self.path_for(cell)).ok()?;
        let j = Json::parse(&text).ok()?;
        if j.field("schema").ok()?.as_u64().ok()? != self.schema as u64 {
            return None;
        }
        if j.field("key").ok()?.as_str().ok()? != cell.key() {
            return None;
        }
        RunReport::from_json_value(j.field("report").ok()?).ok()
    }

    /// Stores a cell's report, atomically (write-then-rename), creating
    /// the cache directory on first use. The temp file carries the
    /// writing process's id plus a process-wide sequence number, so
    /// concurrent writers — threads or whole processes — never clobber
    /// each other's half-written files; the rename publishes a complete
    /// entry or nothing.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or file cannot
    /// be written.
    pub fn store(&self, cell: &Cell, report: &RunReport) -> io::Result<()> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        fs::create_dir_all(&self.dir)?;
        let entry = Json::Obj(vec![
            ("schema".into(), Json::u64(self.schema as u64)),
            ("key".into(), Json::Str(cell.key())),
            ("report".into(), report.to_json_value()),
        ]);
        let path = self.path_for(cell);
        let tmp = self.dir.join(format!(
            "{}.{}.{}.tmp",
            path.file_stem().and_then(|s| s.to_str()).unwrap_or("entry"),
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, entry.to_string())?;
        fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }

    /// Deletes every cached entry, returning how many were removed. A
    /// missing cache directory counts as already clear, and an entry that
    /// vanishes mid-clear (a concurrent clear, or a writer's temp file
    /// renamed away) is skipped rather than an error.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if an entry cannot be removed.
    pub fn clear(&self) -> io::Result<usize> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut removed = 0;
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json" || e == "tmp") {
                match fs::remove_file(&path) {
                    Ok(()) => removed += 1,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(removed)
    }

    /// Scans the cache directory and summarizes its contents. This is the
    /// single code path behind both `hintm cache stats` and the server's
    /// `GET /stats` endpoint.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read;
    /// a missing directory is an empty cache, and individual unreadable
    /// or corrupt entries are counted rather than fatal.
    pub fn stats(&self) -> io::Result<CacheStats> {
        let mut stats = CacheStats {
            dir: self.dir.clone(),
            schema: self.schema,
            ..CacheStats::default()
        };
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(stats),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            let parsed = fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|j| {
                    let schema = j.field("schema").ok()?.as_u64().ok()?;
                    let key = j.field("key").ok()?.as_str().ok()?.to_string();
                    Some((schema, key))
                });
            match parsed {
                Some((schema, _)) if schema != self.schema as u64 => stats.stale += 1,
                Some((_, key)) => {
                    stats.entries += 1;
                    stats.bytes += bytes;
                    // The workload is the key's first `|`-separated field.
                    let workload = key.split('|').next().unwrap_or("?").to_string();
                    let w = stats.by_workload.entry(workload).or_default();
                    w.entries += 1;
                    w.bytes += bytes;
                }
                None => stats.unreadable += 1,
            }
        }
        Ok(stats)
    }
}

/// Per-workload slice of a [`CacheStats`] breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkloadCacheStats {
    /// Cached entries for this workload at the current schema.
    pub entries: usize,
    /// Total bytes those entries occupy on disk.
    pub bytes: u64,
}

/// A summary of a cache directory's contents (see [`Cache::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// The cache root that was scanned.
    pub dir: PathBuf,
    /// The schema version the scan counted as current.
    pub schema: u32,
    /// Entries at the current schema version.
    pub entries: usize,
    /// Total bytes of the current-schema entries.
    pub bytes: u64,
    /// Well-formed entries at a different (stale) schema version.
    pub stale: usize,
    /// Files that could not be read or parsed.
    pub unreadable: usize,
    /// Current-schema entries grouped by workload (sorted by name).
    pub by_workload: BTreeMap<String, WorkloadCacheStats>,
}

impl CacheStats {
    /// Renders the stats as a JSON object (the `cache` section of the
    /// server's `GET /stats` response).
    pub fn to_json(&self) -> Json {
        let workloads = self
            .by_workload
            .iter()
            .map(|(name, w)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("entries".into(), Json::u64(w.entries as u64)),
                        ("bytes".into(), Json::u64(w.bytes)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("dir".into(), Json::Str(self.dir.display().to_string())),
            ("schema".into(), Json::u64(self.schema as u64)),
            ("entries".into(), Json::u64(self.entries as u64)),
            ("bytes".into(), Json::u64(self.bytes)),
            ("stale".into(), Json::u64(self.stale as u64)),
            ("unreadable".into(), Json::u64(self.unreadable as u64)),
            ("by_workload".into(), Json::Obj(workloads)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hintm-cache-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn report() -> RunReport {
        Cell::new("ssca2").run().unwrap()
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn store_then_load_is_bit_identical() {
        let dir = tmp("roundtrip");
        let cache = Cache::new(&dir);
        let cell = Cell::new("ssca2");
        let r = report();
        assert!(cache.load(&cell).is_none());
        cache.store(&cell, &r).unwrap();
        let back = cache.load(&cell).expect("hit");
        assert_eq!(back.to_json(), r.to_json());
        // A different cell misses even with the file present.
        assert!(cache.load(&Cell::new("ssca2").seed(7)).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_bump_invalidates() {
        let dir = tmp("schema");
        let cell = Cell::new("ssca2");
        let r = report();
        Cache::with_schema(&dir, 1).store(&cell, &r).unwrap();
        assert!(Cache::with_schema(&dir, 1).load(&cell).is_some());
        assert!(Cache::with_schema(&dir, 2).load(&cell).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = tmp("corrupt");
        let cache = Cache::new(&dir);
        let cell = Cell::new("ssca2");
        cache.store(&cell, &report()).unwrap();
        fs::write(cache.path_for(&cell), "{not json").unwrap();
        assert!(cache.load(&cell).is_none());
        // Valid JSON with the wrong key is also a miss (collision guard).
        fs::write(
            cache.path_for(&cell),
            format!("{{\"schema\":{SCHEMA_VERSION},\"key\":\"other\",\"report\":{{}}}}"),
        )
        .unwrap();
        assert!(cache.load(&cell).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_and_readers_never_corrupt_an_entry() {
        let dir = tmp("concurrent");
        let cache = Cache::new(&dir);
        let cell = Cell::new("ssca2");
        let r = report();
        let expected = r.to_json();
        // Two writer threads hammer the same cell while two readers poll
        // it. Every load must be either a miss (before the first publish)
        // or the complete, correct report — never a torn file.
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        cache.store(&cell, &r).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        if let Some(back) = cache.load(&cell) {
                            assert_eq!(back.to_json(), expected);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.load(&cell).unwrap().to_json(), expected);
        // No temp files left behind.
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .count();
        assert_eq!(leftovers, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_count_entries_stale_and_unreadable() {
        let dir = tmp("stats");
        let cache = Cache::new(&dir);
        assert_eq!(cache.stats().unwrap().entries, 0, "missing dir is empty");
        let r = report();
        cache.store(&Cell::new("ssca2"), &r).unwrap();
        cache.store(&Cell::new("ssca2").seed(7), &r).unwrap();
        cache.store(&Cell::new("kmeans"), &r).unwrap();
        Cache::with_schema(&dir, 99)
            .store(&Cell::new("kmeans").seed(9), &r)
            .unwrap();
        fs::write(dir.join("garbage.json"), "{not json").unwrap();

        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.unreadable, 1);
        assert!(stats.bytes > 0);
        assert_eq!(stats.by_workload["ssca2"].entries, 2);
        assert_eq!(stats.by_workload["kmeans"].entries, 1);
        let json = stats.to_json();
        assert_eq!(json.field("entries").unwrap().as_u64().unwrap(), 3);
        assert!(json.field("by_workload").unwrap().get("ssca2").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_removes_entries_and_tolerates_missing_dir() {
        let dir = tmp("clear");
        let cache = Cache::new(&dir);
        assert_eq!(cache.clear().unwrap(), 0);
        cache.store(&Cell::new("ssca2"), &report()).unwrap();
        cache.store(&Cell::new("ssca2").seed(7), &report()).unwrap();
        assert_eq!(cache.clear().unwrap(), 2);
        assert_eq!(cache.clear().unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
