//! Content-addressed on-disk result cache.
//!
//! Each cached entry is one JSON file under the cache directory, named by
//! an FNV-1a hash of the schema version plus the cell's canonical
//! [`key`](crate::Cell::key). The file stores the schema, the full key,
//! and the serialized [`RunReport`]; on load both the schema and the key
//! are re-checked, so a hash collision, a stale schema, or a corrupt file
//! all degrade to a cache miss — never to a wrong result.

use crate::Cell;
use hintm::{Json, RunReport};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the cached-entry format AND of anything that feeds the
/// simulated numbers. Bump it whenever reports change meaning (new stats
/// fields, simulator behavior changes) to invalidate every prior entry.
pub const SCHEMA_VERSION: u32 = 1;

/// 64-bit FNV-1a. Collisions are harmless (the stored key is re-checked),
/// so a small fast non-cryptographic hash is enough.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A result cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct Cache {
    dir: PathBuf,
    schema: u32,
}

impl Cache {
    /// A cache at `dir` with the current [`SCHEMA_VERSION`].
    pub fn new(dir: impl Into<PathBuf>) -> Cache {
        Cache::with_schema(dir, SCHEMA_VERSION)
    }

    /// A cache at `dir` pinned to an explicit schema version. Exposed so
    /// tests can prove a schema bump invalidates old entries; production
    /// code should use [`Cache::new`].
    pub fn with_schema(dir: impl Into<PathBuf>, schema: u32) -> Cache {
        Cache {
            dir: dir.into(),
            schema,
        }
    }

    /// The default cache directory: `$HINTM_CACHE_DIR`, or `.hintm-cache`
    /// in the current directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("HINTM_CACHE_DIR")
            .map_or_else(|| PathBuf::from(".hintm-cache"), PathBuf::from)
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a cell's result lives at.
    pub fn path_for(&self, cell: &Cell) -> PathBuf {
        let addressed = format!("schema={}|{}", self.schema, cell.key());
        self.dir
            .join(format!("{:016x}.json", fnv1a(addressed.as_bytes())))
    }

    /// Loads a cell's cached report. Any mismatch — missing file, parse
    /// failure, wrong schema, wrong key — is a miss.
    pub fn load(&self, cell: &Cell) -> Option<RunReport> {
        let text = fs::read_to_string(self.path_for(cell)).ok()?;
        let j = Json::parse(&text).ok()?;
        if j.field("schema").ok()?.as_u64().ok()? != self.schema as u64 {
            return None;
        }
        if j.field("key").ok()?.as_str().ok()? != cell.key() {
            return None;
        }
        RunReport::from_json_value(j.field("report").ok()?).ok()
    }

    /// Stores a cell's report, atomically (write-then-rename), creating
    /// the cache directory on first use.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or file cannot
    /// be written.
    pub fn store(&self, cell: &Cell, report: &RunReport) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let entry = Json::Obj(vec![
            ("schema".into(), Json::u64(self.schema as u64)),
            ("key".into(), Json::Str(cell.key())),
            ("report".into(), report.to_json_value()),
        ]);
        let path = self.path_for(cell);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, entry.to_string())?;
        fs::rename(&tmp, &path)
    }

    /// Deletes every cached entry, returning how many were removed. A
    /// missing cache directory counts as already clear.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if an entry cannot be removed.
    pub fn clear(&self) -> io::Result<usize> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut removed = 0;
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json" || e == "tmp") {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hintm-cache-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn report() -> RunReport {
        Cell::new("ssca2").run().unwrap()
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn store_then_load_is_bit_identical() {
        let dir = tmp("roundtrip");
        let cache = Cache::new(&dir);
        let cell = Cell::new("ssca2");
        let r = report();
        assert!(cache.load(&cell).is_none());
        cache.store(&cell, &r).unwrap();
        let back = cache.load(&cell).expect("hit");
        assert_eq!(back.to_json(), r.to_json());
        // A different cell misses even with the file present.
        assert!(cache.load(&Cell::new("ssca2").seed(7)).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_bump_invalidates() {
        let dir = tmp("schema");
        let cell = Cell::new("ssca2");
        let r = report();
        Cache::with_schema(&dir, 1).store(&cell, &r).unwrap();
        assert!(Cache::with_schema(&dir, 1).load(&cell).is_some());
        assert!(Cache::with_schema(&dir, 2).load(&cell).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = tmp("corrupt");
        let cache = Cache::new(&dir);
        let cell = Cell::new("ssca2");
        cache.store(&cell, &report()).unwrap();
        fs::write(cache.path_for(&cell), "{not json").unwrap();
        assert!(cache.load(&cell).is_none());
        // Valid JSON with the wrong key is also a miss (collision guard).
        fs::write(
            cache.path_for(&cell),
            format!("{{\"schema\":{SCHEMA_VERSION},\"key\":\"other\",\"report\":{{}}}}"),
        )
        .unwrap();
        assert!(cache.load(&cell).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_removes_entries_and_tolerates_missing_dir() {
        let dir = tmp("clear");
        let cache = Cache::new(&dir);
        assert_eq!(cache.clear().unwrap(), 0);
        cache.store(&Cell::new("ssca2"), &report()).unwrap();
        cache.store(&Cell::new("ssca2").seed(7), &report()).unwrap();
        assert_eq!(cache.clear().unwrap(), 2);
        assert_eq!(cache.clear().unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
