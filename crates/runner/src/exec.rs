//! The sharded sweep executor.
//!
//! Cells are pulled off a shared atomic work index by `jobs` worker
//! threads (`std::thread::scope` — no thread-pool dependency). Each cell
//! runs under `catch_unwind`, so one crashing configuration becomes a
//! [`CellOutcome::Crashed`] entry instead of taking the sweep down.
//! Results are reassembled in spec order, which makes the output — and any
//! artifact derived from it — bit-identical whatever the job count.

use crate::{Cache, Cell};
use hintm::RunReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How one cell ended.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The run completed; the report is attached.
    Done(Box<RunReport>),
    /// The run panicked; the payload is the panic message.
    Crashed(String),
}

/// One cell's result: outcome plus execution metadata.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// How it ended.
    pub outcome: CellOutcome,
    /// Wall time spent on this cell (near zero for cache hits).
    pub wall: Duration,
    /// Whether the result came from the cache instead of a simulation.
    pub cached: bool,
}

impl CellResult {
    /// The report, if the cell completed.
    pub fn report(&self) -> Option<&RunReport> {
        match &self.outcome {
            CellOutcome::Done(r) => Some(r),
            CellOutcome::Crashed(_) => None,
        }
    }
}

/// A finished sweep: per-cell results in spec order plus totals.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Per-cell results, in the order the cells were given.
    pub cells: Vec<CellResult>,
    /// Wall time for the whole sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Cells actually simulated this run.
    pub executed: usize,
    /// Cells served from the cache.
    pub cache_hits: usize,
    /// Cells that crashed.
    pub crashed: usize,
}

impl SweepResult {
    /// The report for `cell`, if present and completed.
    pub fn report(&self, cell: &Cell) -> Option<&RunReport> {
        let key = cell.key();
        self.cells
            .iter()
            .find(|r| r.cell.key() == key)
            .and_then(CellResult::report)
    }

    /// The report for `cell`, panicking with the cell's label (and the
    /// crash message, if it crashed) when absent. For harnesses that
    /// cannot proceed without the result.
    pub fn expect_report(&self, cell: &Cell) -> &RunReport {
        let key = cell.key();
        match self.cells.iter().find(|r| r.cell.key() == key) {
            Some(r) => match &r.outcome {
                CellOutcome::Done(report) => report,
                CellOutcome::Crashed(msg) => panic!("cell {} crashed: {msg}", cell.label()),
            },
            None => panic!("cell {} was not part of this sweep", cell.label()),
        }
    }

    /// Iterates over completed `(cell, report)` pairs in spec order.
    pub fn reports(&self) -> impl Iterator<Item = (&Cell, &RunReport)> {
        self.cells
            .iter()
            .filter_map(|r| r.report().map(|rep| (&r.cell, rep)))
    }
}

/// Sweep orchestration configuration, builder-style.
///
/// ```no_run
/// use hintm_runner::{Cell, Runner};
///
/// let result = Runner::new().jobs(8).run(&[Cell::new("vacation")]);
/// println!("{} cells in {:?}", result.cells.len(), result.wall);
/// ```
#[derive(Clone, Debug)]
pub struct Runner {
    jobs: usize,
    cache: Option<Cache>,
    progress: bool,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// A serial runner with the default cache and no progress output.
    pub fn new() -> Runner {
        Runner {
            jobs: 1,
            cache: Some(Cache::new(Cache::default_dir())),
            progress: false,
        }
    }

    /// A runner configured from the environment: `$HINTM_JOBS` (default:
    /// the machine's available parallelism) and `$HINTM_CACHE_DIR` /
    /// `$HINTM_NO_CACHE=1` for the cache. This is what the bench
    /// harnesses use, so figure regeneration scales with the machine.
    pub fn from_env() -> Runner {
        let jobs = std::env::var("HINTM_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let mut r = Runner::new().jobs(jobs);
        if std::env::var_os("HINTM_NO_CACHE").is_some_and(|v| v == "1") {
            r = r.no_cache();
        }
        r
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Disables the result cache (every cell simulates).
    pub fn no_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Uses a specific cache.
    pub fn cache(mut self, cache: Cache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables per-cell progress lines on stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Runs every cell through the simulator (see [`Runner::run_with`]).
    pub fn run(&self, cells: &[Cell]) -> SweepResult {
        self.run_with(cells, |cell| cell.run().unwrap_or_else(|e| panic!("{e}")))
    }

    /// Runs one cell exactly as a sweep worker slot would: cache consult
    /// first, then the simulator under `catch_unwind` panic isolation,
    /// with a fresh result stored back. This is the single-cell entry
    /// point for callers that drive their own queue — the `hintm-serve`
    /// daemon's executor workers claim cells one at a time and push each
    /// through here.
    pub fn execute_cell(&self, cell: &Cell) -> CellResult {
        self.run_one(cell, &|c: &Cell| c.run().unwrap_or_else(|e| panic!("{e}")))
    }

    /// Runs every cell through `exec`, sharded over [`Runner::jobs`]
    /// threads, consulting the cache first and storing fresh results
    /// back. `exec` is the simulation function — tests inject counters or
    /// deliberate panics here. A panicking cell yields
    /// [`CellOutcome::Crashed`] and never poisons the sweep or the cache.
    pub fn run_with<F>(&self, cells: &[Cell], exec: F) -> SweepResult
    where
        F: Fn(&Cell) -> RunReport + Send + Sync,
    {
        let started = Instant::now();
        let n = cells.len();
        let jobs = self.jobs.min(n.max(1));
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, CellResult)>();

        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                let done = &done;
                let exec = &exec;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = self.run_one(&cells[i], exec);
                    if self.progress {
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        let status = match &result.outcome {
                            CellOutcome::Done(_) if result.cached => "cached",
                            CellOutcome::Done(_) => "done",
                            CellOutcome::Crashed(_) => "CRASHED",
                        };
                        eprintln!(
                            "[{finished:>4}/{n}] {status:<7} {} ({:.2}s)",
                            result.cell.label(),
                            result.wall.as_secs_f64(),
                        );
                    }
                    let _ = tx.send((i, result));
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<CellResult>> = (0..n).map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        let ordered: Vec<CellResult> = slots
            .into_iter()
            .map(|r| r.expect("every cell reports"))
            .collect();

        let cache_hits = ordered.iter().filter(|r| r.cached).count();
        let crashed = ordered
            .iter()
            .filter(|r| matches!(r.outcome, CellOutcome::Crashed(_)))
            .count();
        SweepResult {
            executed: n - cache_hits - crashed,
            cache_hits,
            crashed,
            cells: ordered,
            wall: started.elapsed(),
            jobs,
        }
    }

    fn run_one<F>(&self, cell: &Cell, exec: &F) -> CellResult
    where
        F: Fn(&Cell) -> RunReport + Send + Sync,
    {
        let started = Instant::now();
        if let Some(cache) = &self.cache {
            if let Some(report) = cache.load(cell) {
                return CellResult {
                    cell: cell.clone(),
                    outcome: CellOutcome::Done(Box::new(report)),
                    wall: started.elapsed(),
                    cached: true,
                };
            }
        }
        let outcome = match catch_unwind(AssertUnwindSafe(|| exec(cell))) {
            Ok(report) => {
                if let Some(cache) = &self.cache {
                    if let Err(e) = cache.store(cell, &report) {
                        eprintln!("warning: cache store failed for {}: {e}", cell.label());
                    }
                }
                CellOutcome::Done(Box::new(report))
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                CellOutcome::Crashed(msg)
            }
        };
        CellResult {
            cell: cell.clone(),
            outcome,
            wall: started.elapsed(),
            cached: false,
        }
    }
}
