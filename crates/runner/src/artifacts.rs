//! Sweep artifacts: a manifest plus machine-readable result tables.
//!
//! [`write_artifacts`] lays down three files in the output directory:
//!
//! * `manifest.json` — the sweep's shape and per-cell execution record
//!   (key, outcome, cache hit, wall time);
//! * `results.csv` — one row per completed cell, using the CLI's CSV
//!   schema ([`hintm::cli::CSV_HEADER`]);
//! * `results.json` — full [`RunReport`]s keyed by cell, for downstream
//!   tooling that wants more than the CSV columns.
//!
//! Because the executor reassembles results in spec order, these files
//! are bit-identical across job counts.

use crate::cache::SCHEMA_VERSION;
use crate::{Cell, CellOutcome, SweepResult};
use hintm::cli::{csv_row, CSV_HEADER};
use hintm::{chrome_trace, write_binlog, Json, TraceEvent};
use hintm_trace::Fnv64;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

fn scale_str(s: hintm::Scale) -> &'static str {
    match s {
        hintm::Scale::Sim => "sim",
        hintm::Scale::Large => "large",
    }
}

/// A cell's configuration as a JSON object (for the manifest/results).
pub fn cell_to_json(cell: &Cell) -> Json {
    Json::Obj(vec![
        ("workload".into(), Json::Str(cell.workload.clone())),
        ("htm".into(), Json::Str(cell.htm.to_string())),
        ("hints".into(), Json::Str(cell.hint.to_string())),
        ("scale".into(), Json::Str(scale_str(cell.scale).into())),
        ("seed".into(), Json::u64(cell.seed)),
        (
            "threads".into(),
            cell.threads.map_or(Json::Null, |t| Json::u64(t as u64)),
        ),
        ("sim_threads".into(), Json::u64(cell.sim_threads as u64)),
        ("exec".into(), Json::Str(cell.exec.to_string())),
        ("smt2".into(), Json::Bool(cell.smt2)),
        ("preserve".into(), Json::Bool(cell.preserve)),
        ("alloc_color".into(), Json::u64(cell.alloc_color)),
        ("record_tx_sizes".into(), Json::Bool(cell.record_tx_sizes)),
        ("profile_sharing".into(), Json::Bool(cell.profile_sharing)),
    ])
}

fn manifest(name: &str, result: &SweepResult) -> Json {
    let cells = result
        .cells
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("key".into(), Json::Str(r.cell.key())),
                ("cell".into(), cell_to_json(&r.cell)),
                (
                    "outcome".into(),
                    Json::Str(
                        match r.outcome {
                            CellOutcome::Done(_) => "done",
                            CellOutcome::Crashed(_) => "crashed",
                        }
                        .into(),
                    ),
                ),
                ("cached".into(), Json::Bool(r.cached)),
                ("wall_ms".into(), Json::u64(r.wall.as_millis() as u64)),
            ];
            if let CellOutcome::Crashed(msg) = &r.outcome {
                fields.push(("error".into(), Json::Str(msg.clone())));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("sweep".into(), Json::Str(name.into())),
        ("schema".into(), Json::u64(SCHEMA_VERSION as u64)),
        ("jobs".into(), Json::u64(result.jobs as u64)),
        ("wall_ms".into(), Json::u64(result.wall.as_millis() as u64)),
        ("executed".into(), Json::u64(result.executed as u64)),
        ("cache_hits".into(), Json::u64(result.cache_hits as u64)),
        ("crashed".into(), Json::u64(result.crashed as u64)),
        ("cells".into(), Json::Arr(cells)),
    ])
}

/// Renders the results CSV (header + one row per completed cell).
pub fn results_csv(result: &SweepResult) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for (cell, report) in result.reports() {
        out.push_str(&csv_row(report, cell.seed));
        out.push('\n');
    }
    out
}

/// Renders the results table as a JSON array (one `{cell, report}` object
/// per completed cell, in spec order). This is `results.json`'s content
/// and the body of the server's `GET /sweeps/{id}/report`.
pub fn results_json(result: &SweepResult) -> Json {
    Json::Arr(
        result
            .reports()
            .map(|(cell, report)| {
                Json::Obj(vec![
                    ("cell".into(), cell_to_json(cell)),
                    ("report".into(), report.to_json_value()),
                ])
            })
            .collect(),
    )
}

/// Writes `manifest.json`, `results.csv` and `results.json` under `dir`,
/// creating it if needed. Returns the paths written.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory or a file cannot be
/// written.
pub fn write_artifacts(dir: &Path, name: &str, result: &SweepResult) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let paths = [
        dir.join("manifest.json"),
        dir.join("results.csv"),
        dir.join("results.json"),
    ];
    fs::write(&paths[0], manifest(name, result).to_string())?;
    fs::write(&paths[1], results_csv(result))?;
    fs::write(&paths[2], results_json(result).to_string())?;
    Ok(paths.to_vec())
}

/// Writes one traced cell's event stream under `dir`: a Chrome
/// trace_event JSON (`.trace.json`) and a compact binary log
/// (`.trace.bin`), named by the FNV-1a hash of the cell's key — the same
/// addressing scheme the result cache uses. Returns the paths written.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory or a file cannot be
/// written.
pub fn write_trace(dir: &Path, cell: &Cell, events: &[TraceEvent]) -> io::Result<[PathBuf; 2]> {
    fs::create_dir_all(dir)?;
    let stem = format!("{:016x}", Fnv64::hash(cell.key().as_bytes()));
    let paths = [
        dir.join(format!("{stem}.trace.json")),
        dir.join(format!("{stem}.trace.bin")),
    ];
    fs::write(&paths[0], chrome_trace(events))?;
    fs::write(&paths[1], write_binlog(events))?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;

    #[test]
    fn artifacts_cover_every_cell() {
        let dir = std::env::temp_dir().join(format!("hintm-artifacts-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cells = [
            Cell::new("ssca2"),
            Cell::new("ssca2").seed(7),
            Cell::new("not-a-workload"),
        ];
        let result = Runner::new().no_cache().run(&cells);
        let paths = write_artifacts(&dir, "smoke", &result).unwrap();
        assert_eq!(paths.len(), 3);

        let manifest = Json::parse(&fs::read_to_string(&paths[0]).unwrap()).unwrap();
        assert_eq!(manifest.field("cells").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(manifest.field("crashed").unwrap().as_u64().unwrap(), 1);

        // CSV: header + the two completed cells; the crashed one is absent.
        let csv = fs::read_to_string(&paths[1]).unwrap();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next(), Some(CSV_HEADER));

        let results = Json::parse(&fs::read_to_string(&paths[2]).unwrap()).unwrap();
        assert_eq!(results.as_arr().unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
