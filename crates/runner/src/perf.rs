//! `hintm perf`: the perf-regression harness for the simulation hot path.
//!
//! Times a pinned workload×HTM-model grid (fixed seed, fixed scale, hints
//! off) with warmup and repeated measurement, reports the per-cell and
//! overall median throughput in simulated memory accesses per wall second,
//! and writes a `BENCH_<date>.json` snapshot. When a prior snapshot exists
//! it compares the overall medians and fails past a configurable
//! regression threshold, so a hot-path change that slows the engine down
//! breaks CI instead of landing silently.
//!
//! The digest-locked equivalence suite (`tests/perf_equivalence.rs`)
//! guards *correctness* of hot-path rewrites; this harness guards their
//! *speed*. Together they pin both sides of an optimization.
//!
//! Snapshot schema (`schema_version` 3; version 1 files lack `threads`
//! and are read as `threads: 1`; version 1-2 files lack `exec` and are
//! read as `exec: "interp"`):
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "created": "2026-08-06",
//!   "git_rev": "dc3908a",
//!   "grid": "full",
//!   "threads": 1,
//!   "exec": "interp",
//!   "repeat": 5,
//!   "warmup": 1,
//!   "median_events_per_sec": 2026240.0,
//!   "cells": [
//!     {"workload": "kmeans", "htm": "P8", "events": 536870,
//!      "wall_ns": 240000000, "events_per_sec": 2236958.3,
//!      "runs_ns": [241000000, 240000000, 243000000]}
//!   ]
//! }
//! ```
//!
//! `threads` is the engine's `sim_threads` lane count. Throughput at
//! different lane counts measures different host behavior, so a snapshot
//! is only ever compared against a baseline taken at the *same* count: a
//! mismatched auto-discovered baseline skips the comparison with a
//! notice, and a mismatched explicit `--baseline` is an error. `exec`
//! (the execution tier) follows the same rule: interpreted and compiled
//! runs time different code paths, so cross-tier comparisons are refused
//! identically. Non-interp snapshots also get their own file namespace
//! (`BENCH_compiled_<date>.json`), so they are never auto-discovered as
//! baselines for interpreter runs.

use hintm::cli::PerfArgs;
use hintm::{ExecMode, Experiment, HtmKind, Json, Scale};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Snapshot format version (bump on breaking schema changes). Version 2
/// added the top-level `threads` field; version 3 added `exec`. Older
/// files are still read, with `threads` defaulting to 1 and `exec` to
/// `interp`.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// Default failure threshold: >25% slower than the baseline fails.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Environment variable overriding the default threshold.
pub const THRESHOLD_ENV: &str = "HINTM_PERF_THRESHOLD";

/// One cell of the pinned grid.
#[derive(Clone, Copy, Debug)]
pub struct PerfCell {
    /// Registered workload name.
    pub workload: &'static str,
    /// HTM capacity model.
    pub htm: HtmKind,
}

/// The full pinned grid: five workloads spanning small/large footprints
/// and five capacity models spanning cheap/expensive tracking (including
/// the bounded read/write-set and capacity-stretching backends, whose
/// spill paths cost differently from plain exact tracking).
pub fn full_grid() -> Vec<PerfCell> {
    const WORKLOADS: [&str; 5] = ["kmeans", "ssca2", "vacation", "genome", "tpcc-no"];
    const HTMS: [HtmKind; 5] = [
        HtmKind::P8,
        HtmKind::P8S,
        HtmKind::InfCap,
        HtmKind::Lrws,
        HtmKind::PStretch,
    ];
    WORKLOADS
        .iter()
        .flat_map(|w| {
            HTMS.iter().map(|h| PerfCell {
                workload: w,
                htm: *h,
            })
        })
        .collect()
}

/// The 5-cell smoke grid for CI: one workload per capacity model.
pub fn smoke_grid() -> Vec<PerfCell> {
    vec![
        PerfCell {
            workload: "kmeans",
            htm: HtmKind::P8,
        },
        PerfCell {
            workload: "ssca2",
            htm: HtmKind::InfCap,
        },
        PerfCell {
            workload: "vacation",
            htm: HtmKind::P8S,
        },
        PerfCell {
            workload: "genome",
            htm: HtmKind::Lrws,
        },
        PerfCell {
            workload: "tpcc-no",
            htm: HtmKind::PStretch,
        },
    ]
}

/// One cell's measurement.
#[derive(Clone, Debug)]
pub struct CellMeasurement {
    /// Workload name.
    pub workload: String,
    /// HTM model name (display form, e.g. `P8`).
    pub htm: String,
    /// Simulated memory accesses per run (deterministic across repeats).
    pub events: u64,
    /// Median wall time of the timed repeats, in nanoseconds.
    pub wall_ns: u64,
    /// Throughput at the median: `events * 1e9 / wall_ns`.
    pub events_per_sec: f64,
    /// Every timed repeat, in nanoseconds (unsorted, run order).
    pub runs_ns: Vec<u64>,
}

fn median_u64(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2
    }
}

fn median_f64(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// The noise-rejected representative wall time of a cell's timed runs:
/// with 3 or more repeats the single slowest run is dropped, then the
/// median of the rest is taken; with 1-2 repeats every sample counts and
/// the median covers all of them.
///
/// Wall-clock noise on a timed simulation is one-sided — a run can be
/// descheduled, page-fault, or absorb another process's burst and come
/// out slower, but nothing makes it spuriously *faster* — so the max is
/// the only repeat a noise spike can inhabit. With an even count left
/// after the drop, the median averages the two middle runs, which still
/// never includes the dropped outlier.
///
/// # Panics
///
/// Panics on an empty slice (the CLI enforces `--repeat >= 1`).
pub fn noise_rejected_median(runs_ns: &[u64]) -> u64 {
    let mut sorted = runs_ns.to_vec();
    sorted.sort_unstable();
    if sorted.len() >= 3 {
        sorted.pop();
    }
    median_u64(&mut sorted)
}

/// Measures one cell: `warmup` untimed runs, `repeat` timed runs, with
/// the engine at `threads` generation lanes executing under the `exec`
/// tier; [`noise_rejected_median`] picks the representative wall time.
/// The run configuration is pinned (seed 42, sim scale, hints off) so
/// snapshots are comparable across machines only in ratio, but across
/// commits on one machine in absolute terms. All raw repeats (including
/// a dropped outlier) stay in `runs_ns` for forensics.
///
/// # Errors
///
/// Returns an error for unknown workloads (a grid typo).
pub fn measure_cell(
    cell: &PerfCell,
    warmup: usize,
    repeat: usize,
    threads: usize,
    exec: ExecMode,
) -> Result<CellMeasurement, String> {
    let exp = || {
        Experiment::new(cell.workload)
            .htm(cell.htm)
            .seed(42)
            .scale(Scale::Sim)
            .sim_threads(threads)
            .exec(exec)
    };
    let mut events = 0u64;
    for _ in 0..warmup {
        let r = exp().run().map_err(|e| e.to_string())?;
        events = r.stats.cache.accesses;
    }
    let mut runs_ns = Vec::with_capacity(repeat);
    for _ in 0..repeat {
        let t0 = Instant::now();
        let r = exp().run().map_err(|e| e.to_string())?;
        runs_ns.push(t0.elapsed().as_nanos() as u64);
        events = r.stats.cache.accesses;
    }
    let wall_ns = noise_rejected_median(&runs_ns).max(1);
    Ok(CellMeasurement {
        workload: cell.workload.to_string(),
        htm: cell.htm.to_string(),
        events,
        wall_ns,
        events_per_sec: events as f64 * 1e9 / wall_ns as f64,
        runs_ns,
    })
}

/// The overall score of a snapshot: the median of per-cell throughputs.
/// A median (not a mean) keeps one noisy or unusually heavy cell from
/// dominating the regression verdict.
pub fn overall_median(cells: &[CellMeasurement]) -> f64 {
    let mut evps: Vec<f64> = cells.iter().map(|c| c.events_per_sec).collect();
    median_f64(&mut evps)
}

/// Current UTC date as `YYYY-MM-DD` (civil-from-days, proleptic Gregorian).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map_or_else(
            || "unknown".to_string(),
            |o| String::from_utf8_lossy(&o.stdout).trim().to_string(),
        )
}

/// Serializes a snapshot to the BENCH JSON schema.
pub fn snapshot_json(
    cells: &[CellMeasurement],
    grid: &str,
    threads: usize,
    exec: ExecMode,
    repeat: usize,
    warmup: usize,
) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::u64(BENCH_SCHEMA_VERSION)),
        ("created".into(), Json::Str(today_utc())),
        ("git_rev".into(), Json::Str(git_rev())),
        ("grid".into(), Json::Str(grid.into())),
        ("threads".into(), Json::u64(threads as u64)),
        ("exec".into(), Json::Str(exec.to_string())),
        ("repeat".into(), Json::u64(repeat as u64)),
        ("warmup".into(), Json::u64(warmup as u64)),
        (
            "median_events_per_sec".into(),
            Json::f64(overall_median(cells)),
        ),
        (
            "cells".into(),
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("workload".into(), Json::Str(c.workload.clone())),
                            ("htm".into(), Json::Str(c.htm.clone())),
                            ("events".into(), Json::u64(c.events)),
                            ("wall_ns".into(), Json::u64(c.wall_ns)),
                            ("events_per_sec".into(), Json::f64(c.events_per_sec)),
                            (
                                "runs_ns".into(),
                                Json::Arr(c.runs_ns.iter().map(|&n| Json::u64(n)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A parsed baseline: overall median plus per-cell throughputs.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Snapshot file the baseline came from.
    pub path: PathBuf,
    /// Commit recorded in the snapshot.
    pub git_rev: String,
    /// Generation-lane count the snapshot was taken at (1 for schema
    /// version 1 files, which predate the field).
    pub threads: usize,
    /// Execution tier the snapshot was taken under (`interp` for schema
    /// version 1-2 files, which predate the compilation tier).
    pub exec: ExecMode,
    /// Grid name the snapshot timed (`full` when the field is absent —
    /// only full-grid snapshots predate it).
    pub grid: String,
    /// Overall median events/sec.
    pub median_events_per_sec: f64,
    /// `(workload, htm) -> events_per_sec`.
    pub cells: Vec<(String, String, f64)>,
}

/// Parses a BENCH snapshot file.
///
/// # Errors
///
/// Returns an error on I/O failure, malformed JSON, or a schema-version
/// mismatch.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let j = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let version = j
        .field("schema_version")
        .and_then(|v| v.as_u64())
        .map_err(|e| e.to_string())?;
    if !(1..=BENCH_SCHEMA_VERSION).contains(&version) {
        return Err(format!(
            "{}: schema_version {version} (this binary reads 1..={BENCH_SCHEMA_VERSION})",
            path.display()
        ));
    }
    // v1 predates the field; those snapshots were all taken serially.
    let threads = match j.get("threads") {
        Some(v) => v.as_u64().map_err(|e| e.to_string())? as usize,
        None => 1,
    };
    // v1-2 predate the compilation tier; those snapshots interpreted.
    let exec = match j.get("exec") {
        Some(v) => {
            let s = v.as_str().map_err(|e| e.to_string())?;
            ExecMode::parse(s).ok_or_else(|| format!("{}: bad exec `{s}`", path.display()))?
        }
        None => ExecMode::Interp,
    };
    let grid = j
        .get("grid")
        .and_then(|v| v.as_str().ok())
        .unwrap_or("full")
        .to_string();
    let median = j
        .field("median_events_per_sec")
        .and_then(|v| v.as_f64())
        .map_err(|e| e.to_string())?;
    let mut cells = Vec::new();
    for c in j
        .field("cells")
        .and_then(|v| v.as_arr())
        .map_err(|e| e.to_string())?
    {
        cells.push((
            c.field("workload")
                .and_then(|v| v.as_str())
                .map_err(|e| e.to_string())?
                .to_string(),
            c.field("htm")
                .and_then(|v| v.as_str())
                .map_err(|e| e.to_string())?
                .to_string(),
            c.field("events_per_sec")
                .and_then(|v| v.as_f64())
                .map_err(|e| e.to_string())?,
        ));
    }
    Ok(Baseline {
        path: path.to_path_buf(),
        git_rev: j
            .get("git_rev")
            .and_then(|v| v.as_str().ok())
            .unwrap_or("unknown")
            .to_string(),
        threads,
        exec,
        grid,
        median_events_per_sec: median,
        cells,
    })
}

/// The newest full-grid `BENCH_<YYYYMMDD>.json` in `dir` (dates sort
/// lexicographically, so the maximum file name is the latest snapshot).
/// The date field must be exactly eight digits: smoke snapshots
/// (`BENCH_smoke_<date>.json`) are never eligible as baselines — a
/// 1-repeat 3-cell smoke run is not a number future full runs should be
/// judged against. `exclude` skips the file about to be overwritten by a
/// same-day rerun.
pub fn find_baseline(dir: &Path, exclude: Option<&Path>) -> Option<PathBuf> {
    let mut best: Option<PathBuf> = None;
    for entry in fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let date = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"));
        let Some(date) = date else { continue };
        if date.len() != 8 || !date.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let path = entry.path();
        if exclude.is_some_and(|e| e == path) {
            continue;
        }
        if best
            .as_ref()
            .is_none_or(|b| b.file_name() < path.file_name())
        {
            best = Some(path);
        }
    }
    best
}

/// Resolves the regression threshold: flag, then env, then default.
pub fn resolve_threshold(pa: &PerfArgs) -> f64 {
    pa.threshold
        .or_else(|| std::env::var(THRESHOLD_ENV).ok()?.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD)
}

/// Runs the whole `hintm perf` command: measure, report, snapshot,
/// compare.
///
/// # Errors
///
/// Returns an error on unknown grid cells, unwritable output, an
/// unreadable explicit baseline, or a throughput regression beyond the
/// threshold.
pub fn run_perf(pa: &PerfArgs) -> Result<(), String> {
    let (grid, grid_name) = if pa.smoke {
        (smoke_grid(), "smoke")
    } else {
        (full_grid(), "full")
    };
    let out_dir = PathBuf::from(pa.out.as_deref().unwrap_or("."));
    // Smoke snapshots get their own namespace so a quick CI run can never
    // clobber (or be mistaken for) a committed full-grid baseline. The
    // same goes for non-interp tiers: a compiled-tier run writes
    // `BENCH_compiled_<date>.json`, which the auto-discovery (8-digit
    // dates only) never picks as an interpreter baseline.
    let exec_tag = match pa.exec {
        ExecMode::Interp => "",
        ExecMode::Compiled => "compiled_",
        ExecMode::Both => "both_",
    };
    let stamp_path = out_dir.join(format!(
        "BENCH_{}{}{}.json",
        if pa.smoke { "smoke_" } else { "" },
        exec_tag,
        today_utc().replace('-', "")
    ));

    eprintln!(
        "perf: {} grid, {} cells, warmup {} + repeat {}, threads {}, exec {}",
        grid_name,
        grid.len(),
        pa.warmup,
        pa.repeat,
        pa.threads,
        pa.exec
    );
    let mut cells = Vec::with_capacity(grid.len());
    for c in &grid {
        let m = measure_cell(c, pa.warmup, pa.repeat, pa.threads, pa.exec)?;
        eprintln!(
            "  {:<10} {:<7} {:>9} events  {:>9.0} ev/s  ({:.1} ms median)",
            m.workload,
            m.htm,
            m.events,
            m.events_per_sec,
            m.wall_ns as f64 / 1e6,
        );
        cells.push(m);
    }
    let median = overall_median(&cells);
    eprintln!("perf: overall median {median:.0} events/sec");

    fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let json = snapshot_json(&cells, grid_name, pa.threads, pa.exec, pa.repeat, pa.warmup);
    let mut file =
        fs::File::create(&stamp_path).map_err(|e| format!("{}: {e}", stamp_path.display()))?;
    writeln!(file, "{json}").map_err(|e| e.to_string())?;
    eprintln!("wrote {}", stamp_path.display());

    if pa.no_compare {
        return Ok(());
    }
    let baseline_path = match &pa.baseline {
        Some(p) => Some(PathBuf::from(p)),
        None => find_baseline(&out_dir, Some(&stamp_path)),
    };
    let Some(bp) = baseline_path else {
        eprintln!(
            "perf: no baseline snapshot (BENCH_<date>.json) in {}; comparison skipped",
            out_dir.display()
        );
        return Ok(());
    };
    let base = load_baseline(&bp)?;
    if base.grid != grid_name {
        // A smoke median covers a different (and far smaller) cell set
        // than a full-grid median: the ratio compares nothing comparable.
        let msg = format!(
            "baseline {} timed the {} grid, this run the {} grid",
            base.path.display(),
            base.grid,
            grid_name
        );
        if pa.baseline.is_some() {
            return Err(format!("perf: refusing comparison: {msg}"));
        }
        eprintln!("perf: comparison skipped: {msg}");
        return Ok(());
    }
    if base.threads != pa.threads {
        // Lane counts measure different host behavior; the ratio would be
        // meaningless. An explicit ask that can't be honored is an error;
        // an auto-discovered mismatch just skips the comparison.
        let msg = format!(
            "baseline {} was taken at threads {}, this run at threads {}",
            base.path.display(),
            base.threads,
            pa.threads
        );
        if pa.baseline.is_some() {
            return Err(format!("perf: refusing comparison: {msg}"));
        }
        eprintln!("perf: comparison skipped: {msg}");
        return Ok(());
    }
    if base.exec != pa.exec {
        // Same rule as a cross-thread-count comparison: the tiers time
        // different code paths, so the ratio says nothing about either.
        let msg = format!(
            "baseline {} was taken under exec {}, this run under exec {}",
            base.path.display(),
            base.exec,
            pa.exec
        );
        if pa.baseline.is_some() {
            return Err(format!("perf: refusing comparison: {msg}"));
        }
        eprintln!("perf: comparison skipped: {msg}");
        return Ok(());
    }
    let threshold = resolve_threshold(pa);
    let ratio = median / base.median_events_per_sec;
    eprintln!(
        "perf: {:.2}x vs baseline {} ({}, {:.0} ev/s); threshold -{:.0}%",
        ratio,
        base.path.display(),
        base.git_rev,
        base.median_events_per_sec,
        threshold * 100.0
    );
    for m in &cells {
        if let Some((_, _, b)) = base
            .cells
            .iter()
            .find(|(w, h, _)| *w == m.workload && *h == m.htm)
        {
            eprintln!(
                "  {:<10} {:<7} {:>6.2}x",
                m.workload,
                m.htm,
                m.events_per_sec / b
            );
        }
    }
    if ratio < 1.0 - threshold {
        return Err(format!(
            "perf regression: {:.0} ev/s is {:.1}% below baseline {:.0} ev/s \
             (threshold {:.0}%)",
            median,
            (1.0 - ratio) * 100.0,
            base.median_events_per_sec,
            threshold * 100.0
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_pinned() {
        assert_eq!(full_grid().len(), 25);
        assert_eq!(smoke_grid().len(), 5);
        // Every smoke cell is drawn from the full grid.
        for s in smoke_grid() {
            assert!(full_grid()
                .iter()
                .any(|f| f.workload == s.workload && f.htm == s.htm));
        }
    }

    #[test]
    fn medians() {
        assert_eq!(median_u64(&mut [3, 1, 2]), 2);
        assert_eq!(median_u64(&mut [4, 1, 2, 3]), 2);
        assert_eq!(median_f64(&mut [1.0, 5.0, 3.0]), 3.0);
    }

    #[test]
    fn noise_rejection_starts_at_three_repeats() {
        // repeat 1: the single sample IS the result — nothing to reject.
        assert_eq!(noise_rejected_median(&[7]), 7);
        // repeat 2: both samples count; the median averages them. Dropping
        // the slower of two would blindly trust a single run.
        assert_eq!(noise_rejected_median(&[10, 1000]), 505);
        assert_eq!(noise_rejected_median(&[1000, 10]), 505);
        // repeat 3: the threshold — the slowest is dropped, the median of
        // the remaining two is the average.
        assert_eq!(noise_rejected_median(&[10, 12, 1000]), 11);
        assert_eq!(noise_rejected_median(&[1000, 10, 12]), 11);
        // repeat 5: a single noise spike no longer drags the median up.
        assert_eq!(noise_rejected_median(&[10, 11, 1000, 12, 13]), 11);
        assert_eq!(median_u64(&mut [10, 11, 1000, 12, 13]), 12);
    }

    #[test]
    fn snapshot_round_trips_through_the_baseline_loader() {
        let cells = vec![
            CellMeasurement {
                workload: "kmeans".into(),
                htm: "P8".into(),
                events: 1000,
                wall_ns: 500,
                events_per_sec: 2e9,
                runs_ns: vec![500, 501],
            },
            CellMeasurement {
                workload: "ssca2".into(),
                htm: "InfCap".into(),
                events: 2000,
                wall_ns: 2000,
                events_per_sec: 1e9,
                runs_ns: vec![2000],
            },
        ];
        let dir = std::env::temp_dir().join("hintm-perf-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_20260101.json");
        fs::write(
            &path,
            snapshot_json(&cells, "smoke", 4, ExecMode::Compiled, 2, 1).to_string(),
        )
        .unwrap();
        let b = load_baseline(&path).unwrap();
        assert_eq!(b.median_events_per_sec, 1.5e9);
        assert_eq!(b.threads, 4);
        assert_eq!(b.exec, ExecMode::Compiled);
        assert_eq!(b.grid, "smoke");
        assert_eq!(b.cells.len(), 2);
        assert_eq!(b.cells[0].0, "kmeans");
        assert_eq!(b.cells[1].2, 1e9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_snapshots_read_as_serial() {
        let dir = std::env::temp_dir().join("hintm-perf-v1compat");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_20260101.json");
        fs::write(
            &path,
            r#"{"schema_version": 1, "median_events_per_sec": 2.0, "cells": []}"#,
        )
        .unwrap();
        let b = load_baseline(&path).unwrap();
        assert_eq!(b.threads, 1, "v1 files predate lanes: always serial");
        assert_eq!(b.exec, ExecMode::Interp, "v1 files predate the compiler");
        assert_eq!(b.grid, "full", "only full-grid snapshots predate `grid`");
        assert_eq!(b.median_events_per_sec, 2.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_snapshots_read_as_interp() {
        let dir = std::env::temp_dir().join("hintm-perf-v2compat");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_20260101.json");
        fs::write(
            &path,
            r#"{"schema_version": 2, "threads": 4, "median_events_per_sec": 2.0, "cells": []}"#,
        )
        .unwrap();
        let b = load_baseline(&path).unwrap();
        assert_eq!(b.threads, 4);
        assert_eq!(b.exec, ExecMode::Interp, "v2 files predate the compiler");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn find_baseline_picks_newest_and_respects_exclude() {
        let dir = std::env::temp_dir().join("hintm-perf-findbase");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("BENCH_20250101.json"), "{}").unwrap();
        fs::write(dir.join("BENCH_20260101.json"), "{}").unwrap();
        fs::write(dir.join("notes.txt"), "").unwrap();
        // Smoke snapshots sort above full ones ('s' > any digit) but must
        // never be selected as a baseline; nor are compiled-tier ones —
        // they would be refused anyway, but they shouldn't even shadow
        // the newest interpreter snapshot.
        fs::write(dir.join("BENCH_smoke_20270101.json"), "{}").unwrap();
        fs::write(dir.join("BENCH_compiled_20270101.json"), "{}").unwrap();
        fs::write(dir.join("BENCH_both_20270101.json"), "{}").unwrap();
        let newest = dir.join("BENCH_20260101.json");
        assert_eq!(find_baseline(&dir, None), Some(newest.clone()));
        assert_eq!(
            find_baseline(&dir, Some(&newest)),
            Some(dir.join("BENCH_20250101.json"))
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join("hintm-perf-schema");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_20260101.json");
        fs::write(&path, r#"{"schema_version": 99}"#).unwrap();
        let err = load_baseline(&path).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn today_is_iso_formatted() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        assert!(d.starts_with("20"), "{d}");
    }

    #[test]
    fn smoke_measurement_produces_sane_numbers() {
        let m = measure_cell(
            &PerfCell {
                workload: "kmeans",
                htm: HtmKind::P8,
            },
            0,
            1,
            1,
            ExecMode::Interp,
        )
        .unwrap();
        assert!(m.events > 0);
        assert!(m.wall_ns > 0);
        assert!(m.events_per_sec > 0.0);
        assert_eq!(m.runs_ns.len(), 1);
    }

    #[test]
    fn lane_counts_agree_on_events() {
        // The engine is bit-identical across sim_threads, so the event
        // count a measurement reports must not depend on the lane count.
        let cell = PerfCell {
            workload: "kmeans",
            htm: HtmKind::P8,
        };
        let serial = measure_cell(&cell, 0, 1, 1, ExecMode::Interp).unwrap();
        let laned = measure_cell(&cell, 0, 1, 4, ExecMode::Interp).unwrap();
        assert_eq!(serial.events, laned.events);
    }

    #[test]
    fn exec_tiers_agree_on_events() {
        // The compiled tier is digest-locked to the interpreter, so the
        // event count must not depend on the execution tier either.
        let cell = PerfCell {
            workload: "kmeans",
            htm: HtmKind::P8,
        };
        let interp = measure_cell(&cell, 0, 1, 1, ExecMode::Interp).unwrap();
        let compiled = measure_cell(&cell, 0, 1, 1, ExecMode::Compiled).unwrap();
        assert_eq!(interp.events, compiled.events);
    }
}
