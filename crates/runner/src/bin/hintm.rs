//! The `hintm` command-line tool: run reproduction experiments from the
//! shell. Lives in the runner crate so `hintm sweep` / `hintm cache` can
//! reach the orchestration layer; everything else is delegated to
//! [`hintm::cli::execute`]. See `hintm help` or [`hintm::cli::USAGE`].

use hintm::cli::{self, Command, SweepArgs};
use hintm_runner::{Cache, Runner, SweepSpec};
use std::path::PathBuf;
use std::process::ExitCode;

fn build_runner(sa: &SweepArgs) -> Runner {
    let jobs = sa
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let mut runner = Runner::new().jobs(jobs).progress(true);
    if sa.no_cache || sa.trace {
        // Tracing re-simulates every cell: cached results carry no event
        // stream to export.
        runner = runner.no_cache();
    } else if let Some(dir) = &sa.cache_dir {
        runner = runner.cache(Cache::new(dir));
    }
    runner
}

fn run_sweep(sa: &SweepArgs) -> Result<(), String> {
    let mut spec = SweepSpec::new()
        .workloads(sa.workloads.iter().map(String::as_str))
        .htms(sa.htms.iter().copied())
        .hints(sa.hints.iter().copied())
        .seeds(sa.seeds.iter().copied())
        .scale(sa.scale)
        .smt2(sa.smt2)
        .preserve(sa.preserve);
    if let Some(t) = sa.threads {
        spec = spec.threads(t);
    }
    let cells = spec.cells();
    let runner = build_runner(sa);
    let result = if sa.trace {
        let trace_dir = sa.out.as_ref().map(|o| PathBuf::from(o).join("traces"));
        runner.run_with(&cells, |cell| {
            let (report, rec) = cell.run_traced(100_000).unwrap_or_else(|e| panic!("{e}"));
            if let Some(dir) = &trace_dir {
                if let Err(e) = hintm_runner::write_trace(dir, cell, &rec.events()) {
                    eprintln!("warning: trace export failed for {}: {e}", cell.label());
                }
            }
            report
        })
    } else {
        runner.run(&cells)
    };

    eprintln!(
        "sweep: {} cells in {:.2}s with {} jobs — {} simulated, {} cached, {} crashed",
        result.cells.len(),
        result.wall.as_secs_f64(),
        result.jobs,
        result.executed,
        result.cache_hits,
        result.crashed,
    );
    if let Some(out) = &sa.out {
        let paths = hintm_runner::write_artifacts(&PathBuf::from(out), "sweep", &result)
            .map_err(|e| format!("writing artifacts to {out}: {e}"))?;
        for p in paths {
            eprintln!("wrote {}", p.display());
        }
    }
    if sa.csv {
        print!("{}", hintm_runner::results_csv(&result));
    }
    if result.crashed > 0 {
        return Err(format!("{} cell(s) crashed", result.crashed));
    }
    if sa.audit {
        audit_sweep(sa, &cells)?;
    }
    Ok(())
}

/// Audits every distinct workload a sweep touched: runs the IR verifier,
/// the lint set, and the dynamic sharing oracle once per workload at the
/// sweep's scale and first seed.
fn audit_sweep(sa: &SweepArgs, cells: &[hintm_runner::Cell]) -> Result<(), String> {
    let mut names: Vec<&str> = cells.iter().map(|c| c.workload.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    let seed = sa.seeds.first().copied().unwrap_or(42);
    eprintln!("{}", cli::audit_header());
    let mut failed = 0usize;
    for name in names {
        match hintm_audit::audit_workload(name, sa.scale, seed) {
            Some(r) => {
                eprintln!("{}", cli::audit_row(&r));
                if !r.passed() {
                    failed += 1;
                }
            }
            None => return Err(format!("audit: unknown workload `{name}`")),
        }
    }
    if failed > 0 {
        return Err(format!("{failed} workload(s) failed the audit"));
    }
    Ok(())
}

fn clear_cache(dir: Option<&str>) -> Result<(), String> {
    let cache = Cache::new(dir.map_or_else(Cache::default_dir, PathBuf::from));
    let removed = cache.clear().map_err(|e| e.to_string())?;
    eprintln!(
        "cleared {} cached result(s) from {}",
        removed,
        cache.dir().display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match &cmd {
        Command::Sweep(sa) => run_sweep(sa),
        Command::Perf(pa) => hintm_runner::perf::run_perf(pa),
        Command::CacheClear { dir } => clear_cache(dir.as_deref()),
        other => {
            let mut out = std::io::stdout().lock();
            cli::execute(other, &mut out).map_err(|e| e.to_string())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
