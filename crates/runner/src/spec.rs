//! Sweep cells and the [`SweepSpec`] builder.
//!
//! A [`Cell`] is one fully-specified simulator run — workload, HTM model,
//! hint mode, input scale, seed, plus the less common knobs (thread
//! override, SMT, preserve, profiling). [`SweepSpec`] enumerates the cross
//! product of the axes you give it, in a stable workload-major order, and
//! deduplicates cells that different axes happen to produce twice.

use hintm::{
    AllocConfig, ExecMode, Experiment, HintMode, HtmKind, Recording, RunReport, Scale,
    UnknownWorkload, WORKLOAD_NAMES,
};
use std::collections::HashSet;

/// One fully-specified simulator run.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Workload name (see `hintm list`).
    pub workload: String,
    /// HTM configuration.
    pub htm: HtmKind,
    /// Hint mode.
    pub hint: HintMode,
    /// Input scale.
    pub scale: Scale,
    /// Run seed.
    pub seed: u64,
    /// Thread-count override (`None` = the workload's paper default).
    pub threads: Option<usize>,
    /// Host threads for section generation (per-core lanes). Results are
    /// bit-identical for every value, so this knob is deliberately NOT
    /// part of [`Cell::key`] — the cache is shared across thread counts.
    pub sim_threads: usize,
    /// Execution tier (interpreter / compiled access programs / lockstep
    /// self-check). Bit-identical results for every value, so — like
    /// `sim_threads` — deliberately NOT part of [`Cell::key`].
    pub exec: ExecMode,
    /// 2-way SMT (16 hardware threads on 8 cores).
    pub smt2: bool,
    /// §VI-B preserve optimization.
    pub preserve: bool,
    /// Heap-placement color stride in bytes (0 = packed). Placement
    /// changes simulated addresses and so abort counts — unlike
    /// `sim_threads`/`exec`, this IS part of [`Cell::key`].
    pub alloc_color: u64,
    /// Record per-committed-transaction footprints (Fig. 6 CDFs).
    pub record_tx_sizes: bool,
    /// Feed every access to the sharing profiler (Fig. 1 metrics).
    pub profile_sharing: bool,
}

fn scale_str(s: Scale) -> &'static str {
    match s {
        Scale::Sim => "sim",
        Scale::Large => "large",
    }
}

impl Cell {
    /// A cell with the paper's defaults: P8 HTM, no hints, `Scale::Sim`,
    /// seed 42 (mirrors [`Experiment::new`]).
    pub fn new(workload: &str) -> Cell {
        Cell {
            workload: workload.to_string(),
            htm: HtmKind::P8,
            hint: HintMode::Off,
            scale: Scale::Sim,
            seed: 42,
            threads: None,
            sim_threads: 1,
            exec: ExecMode::Interp,
            smt2: false,
            preserve: false,
            alloc_color: 0,
            record_tx_sizes: false,
            profile_sharing: false,
        }
    }

    /// Selects the HTM configuration.
    pub fn htm(mut self, kind: HtmKind) -> Self {
        self.htm = kind;
        self
    }

    /// Selects the hint mode.
    pub fn hint(mut self, mode: HintMode) -> Self {
        self.hint = mode;
        self
    }

    /// Selects the input scale.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the workload's thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Shards section generation across `n` host threads (clamped to 1).
    /// Does not change results and does not enter [`Cell::key`].
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n.max(1);
        self
    }

    /// Selects the execution tier. Does not change results and does not
    /// enter [`Cell::key`].
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    /// Enables 2-way SMT.
    pub fn smt2(mut self, on: bool) -> Self {
        self.smt2 = on;
        self
    }

    /// Enables the preserve optimization.
    pub fn preserve(mut self, on: bool) -> Self {
        self.preserve = on;
        self
    }

    /// Sets the heap-placement color stride (bytes padded after every
    /// fresh allocation). Result-affecting: enters [`Cell::key`].
    pub fn alloc_color(mut self, stride: u64) -> Self {
        self.alloc_color = stride;
        self
    }

    /// Records per-transaction footprints.
    pub fn record_tx_sizes(mut self, on: bool) -> Self {
        self.record_tx_sizes = on;
        self
    }

    /// Enables the sharing profiler.
    pub fn profile_sharing(mut self, on: bool) -> Self {
        self.profile_sharing = on;
        self
    }

    /// The canonical identity of this cell: every *result-affecting*
    /// configuration knob in a fixed order. Two cells are the same run iff
    /// their keys are equal — the cache addresses results by a hash of
    /// this string. `sim_threads` and `exec` are intentionally absent: the
    /// engine is bit-identical across thread counts and execution tiers,
    /// so resubmitting a spec at a different `sim_threads` or `exec` must
    /// hit the cache.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|seed={}|threads={}|smt2={}|preserve={}|color={}|txsizes={}|sharing={}",
            self.workload,
            self.htm,
            self.hint,
            scale_str(self.scale),
            self.seed,
            self.threads
                .map_or_else(|| "auto".to_string(), |t| t.to_string()),
            self.smt2,
            self.preserve,
            self.alloc_color,
            self.record_tx_sizes,
            self.profile_sharing,
        )
    }

    /// A short human-readable label for progress lines.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{} s{}",
            self.workload, self.htm, self.hint, self.seed
        )
    }

    /// Builds the equivalent [`Experiment`].
    pub fn experiment(&self) -> Experiment {
        let mut e = Experiment::new(&self.workload)
            .htm(self.htm)
            .hint_mode(self.hint)
            .scale(self.scale)
            .seed(self.seed)
            .smt2(self.smt2)
            .preserve(self.preserve)
            .record_tx_sizes(self.record_tx_sizes)
            .profile_sharing(self.profile_sharing)
            .sim_threads(self.sim_threads)
            .exec(self.exec)
            .alloc(AllocConfig {
                color_stride: self.alloc_color,
                ..AllocConfig::default()
            });
        if let Some(t) = self.threads {
            e = e.threads(t);
        }
        e
    }

    /// Runs the cell.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if the workload name is not registered.
    pub fn run(&self) -> Result<RunReport, UnknownWorkload> {
        self.experiment().run()
    }

    /// Runs the cell under a trace recorder retaining up to `events`
    /// events (metrics and the digest always cover the whole run). The
    /// report carries the metric summary in [`RunReport::trace`].
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] if the workload name is not registered.
    pub fn run_traced(&self, events: usize) -> Result<(RunReport, Recording), UnknownWorkload> {
        self.experiment().run_traced(events)
    }
}

/// Builder enumerating a sweep's cells as the cross product of its axes.
///
/// Empty axes fall back to defaults at [`SweepSpec::cells`] time: all
/// registered workloads, `[P8]`, `[off]`, `[sim]`, `[42]`. Irregular cells
/// (e.g. one profiling run per workload) ride along via
/// [`SweepSpec::cell`]. Enumeration order is stable — workload-major, then
/// HTM, hint, scale, seed, alloc color, then the extra cells — and
/// duplicates are dropped, keeping the first occurrence.
#[derive(Clone, Debug, Default)]
pub struct SweepSpec {
    workloads: Vec<String>,
    htms: Vec<HtmKind>,
    hints: Vec<HintMode>,
    scales: Vec<Scale>,
    seeds: Vec<u64>,
    alloc_colors: Vec<u64>,
    threads: Option<usize>,
    sim_threads: usize,
    exec: Option<ExecMode>,
    smt2: bool,
    preserve: bool,
    record_tx_sizes: bool,
    profile_sharing: bool,
    extra: Vec<Cell>,
}

impl SweepSpec {
    /// An empty spec (all axes at their defaults).
    pub fn new() -> SweepSpec {
        SweepSpec::default()
    }

    /// Adds one workload to the sweep.
    pub fn workload(mut self, name: &str) -> Self {
        self.workloads.push(name.to_string());
        self
    }

    /// Adds several workloads.
    pub fn workloads<'a>(mut self, names: impl IntoIterator<Item = &'a str>) -> Self {
        self.workloads.extend(names.into_iter().map(String::from));
        self
    }

    /// Adds one HTM configuration to the sweep.
    pub fn htm(mut self, kind: HtmKind) -> Self {
        self.htms.push(kind);
        self
    }

    /// Adds several HTM configurations.
    pub fn htms(mut self, kinds: impl IntoIterator<Item = HtmKind>) -> Self {
        self.htms.extend(kinds);
        self
    }

    /// Adds one hint mode to the sweep.
    pub fn hint(mut self, mode: HintMode) -> Self {
        self.hints.push(mode);
        self
    }

    /// Adds several hint modes.
    pub fn hints(mut self, modes: impl IntoIterator<Item = HintMode>) -> Self {
        self.hints.extend(modes);
        self
    }

    /// Adds one input scale to the sweep.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scales.push(scale);
        self
    }

    /// Adds one seed to the sweep.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Adds several seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Adds one heap-placement color stride to the sweep (a
    /// result-affecting axis; empty = `[0]`, the packed default).
    pub fn alloc_color(mut self, stride: u64) -> Self {
        self.alloc_colors.push(stride);
        self
    }

    /// Adds several heap-placement color strides.
    pub fn alloc_colors(mut self, strides: impl IntoIterator<Item = u64>) -> Self {
        self.alloc_colors.extend(strides);
        self
    }

    /// Thread-count override applied to every enumerated cell.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Host generation threads applied to every enumerated cell
    /// (including extras). Purely a throughput knob — see
    /// [`Cell::sim_threads`].
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n.max(1);
        self
    }

    /// Execution tier applied to every enumerated cell (including
    /// extras). Purely a performance/self-checking knob — see
    /// [`Cell::exec`].
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = Some(mode);
        self
    }

    /// 2-way SMT on every enumerated cell.
    pub fn smt2(mut self, on: bool) -> Self {
        self.smt2 = on;
        self
    }

    /// Preserve optimization on every enumerated cell.
    pub fn preserve(mut self, on: bool) -> Self {
        self.preserve = on;
        self
    }

    /// Footprint recording on every enumerated cell.
    pub fn record_tx_sizes(mut self, on: bool) -> Self {
        self.record_tx_sizes = on;
        self
    }

    /// Sharing profiling on every enumerated cell.
    pub fn profile_sharing(mut self, on: bool) -> Self {
        self.profile_sharing = on;
        self
    }

    /// Appends one irregular cell after the cross product.
    pub fn cell(mut self, cell: Cell) -> Self {
        self.extra.push(cell);
        self
    }

    /// Enumerates the sweep's cells: cross product in stable order, extras
    /// appended, duplicates dropped (first occurrence wins).
    pub fn cells(&self) -> Vec<Cell> {
        let workloads: Vec<String> = if self.workloads.is_empty() {
            WORKLOAD_NAMES.iter().map(|s| s.to_string()).collect()
        } else {
            self.workloads.clone()
        };
        let htms = if self.htms.is_empty() {
            vec![HtmKind::P8]
        } else {
            self.htms.clone()
        };
        let hints = if self.hints.is_empty() {
            vec![HintMode::Off]
        } else {
            self.hints.clone()
        };
        let scales = if self.scales.is_empty() {
            vec![Scale::Sim]
        } else {
            self.scales.clone()
        };
        let seeds = if self.seeds.is_empty() {
            vec![42]
        } else {
            self.seeds.clone()
        };
        let alloc_colors = if self.alloc_colors.is_empty() {
            vec![0]
        } else {
            self.alloc_colors.clone()
        };

        let mut product = Vec::new();
        for w in &workloads {
            for &htm in &htms {
                for &hint in &hints {
                    for &scale in &scales {
                        for &seed in &seeds {
                            for &color in &alloc_colors {
                                let mut c = Cell::new(w)
                                    .htm(htm)
                                    .hint(hint)
                                    .scale(scale)
                                    .seed(seed)
                                    .smt2(self.smt2)
                                    .preserve(self.preserve)
                                    .alloc_color(color)
                                    .record_tx_sizes(self.record_tx_sizes)
                                    .profile_sharing(self.profile_sharing);
                                c.threads = self.threads;
                                c.sim_threads = self.sim_threads.max(1);
                                c.exec = self.exec.unwrap_or_default();
                                product.push(c);
                            }
                        }
                    }
                }
            }
        }
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let extra = self.extra.iter().cloned().map(|mut c| {
            // A spec-level sim_threads/exec override also covers extras;
            // an unset spec leaves each extra's own value alone.
            if self.sim_threads > 0 {
                c.sim_threads = self.sim_threads;
            }
            if let Some(exec) = self.exec {
                c.exec = exec;
            }
            c
        });
        for cell in product.into_iter().chain(extra) {
            if seen.insert(cell.key()) {
                out.push(cell);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_covers_every_knob() {
        let a = Cell::new("kmeans");
        // Flipping any knob must change the key.
        let variants = [
            Cell::new("genome"),
            a.clone().htm(HtmKind::L1Tm),
            a.clone().hint(HintMode::Full),
            a.clone().scale(Scale::Large),
            a.clone().seed(7),
            a.clone().threads(4),
            a.clone().smt2(true),
            a.clone().preserve(true),
            a.clone().alloc_color(64),
            a.clone().record_tx_sizes(true),
            a.clone().profile_sharing(true),
        ];
        for v in &variants {
            assert_ne!(a.key(), v.key(), "key misses a knob: {v:?}");
        }
        assert_eq!(a.key(), a.clone().key());
    }

    #[test]
    fn sim_threads_is_not_part_of_the_key() {
        // The engine is bit-identical across sim_threads, so the cache
        // must hit across values: the key deliberately excludes it.
        let a = Cell::new("kmeans");
        assert_eq!(a.key(), a.clone().sim_threads(4).key());
        assert_eq!(Cell::new("kmeans").sim_threads(0).sim_threads, 1);
    }

    #[test]
    fn exec_is_not_part_of_the_key() {
        // Same rule as sim_threads: execution tiers are digest-locked to
        // produce identical results, so the cache is shared across them.
        let a = Cell::new("kmeans");
        assert_eq!(a.key(), a.clone().exec(ExecMode::Compiled).key());
        assert_eq!(a.key(), a.clone().exec(ExecMode::Both).key());
    }

    #[test]
    fn spec_exec_covers_product_and_extras() {
        let cells = SweepSpec::new()
            .workload("kmeans")
            .cell(Cell::new("ssca2"))
            .exec(ExecMode::Compiled)
            .cells();
        assert!(cells.iter().all(|c| c.exec == ExecMode::Compiled));
        // Unset spec leaves an extra's own value alone.
        let cells = SweepSpec::new()
            .workload("kmeans")
            .cell(Cell::new("ssca2").exec(ExecMode::Both))
            .cells();
        assert_eq!(cells[0].exec, ExecMode::Interp);
        assert_eq!(cells[1].exec, ExecMode::Both);
    }

    #[test]
    fn spec_sim_threads_covers_product_and_extras() {
        let spec = SweepSpec::new()
            .workload("kmeans")
            .cell(Cell::new("ssca2"))
            .sim_threads(4);
        let cells = spec.cells();
        assert!(cells.iter().all(|c| c.sim_threads == 4));
        // Unset spec leaves an extra's own value alone.
        let cells = SweepSpec::new()
            .workload("kmeans")
            .cell(Cell::new("ssca2").sim_threads(2))
            .cells();
        assert_eq!(cells[0].sim_threads, 1);
        assert_eq!(cells[1].sim_threads, 2);
    }

    #[test]
    fn spec_enumerates_cross_product_in_stable_order() {
        let spec = SweepSpec::new()
            .workloads(["kmeans", "ssca2"])
            .htms([HtmKind::P8, HtmKind::InfCap])
            .hints([HintMode::Off, HintMode::Full])
            .seeds([1, 2]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert_eq!(cells[0].key(), Cell::new("kmeans").seed(1).key());
        // Workload-major: all kmeans cells precede all ssca2 cells.
        assert!(cells[..8].iter().all(|c| c.workload == "kmeans"));
        assert!(cells[8..].iter().all(|c| c.workload == "ssca2"));
        assert_eq!(spec.cells(), cells);
    }

    #[test]
    fn alloc_color_is_a_result_affecting_axis() {
        // Placement shifts addresses, so the cache must NOT share results
        // across strides: the key includes the axis.
        let cells = SweepSpec::new()
            .workload("kmeans")
            .alloc_colors([0, 64])
            .cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].alloc_color, 0);
        assert_eq!(cells[1].alloc_color, 64);
        assert_ne!(cells[0].key(), cells[1].key());
        // The packed default enumerates exactly the old single cell.
        assert_eq!(Cell::new("kmeans").key(), cells[0].key());
    }

    #[test]
    fn spec_dedups_and_appends_extras() {
        let spec = SweepSpec::new()
            .workload("kmeans")
            .workload("kmeans")
            .htms([HtmKind::P8, HtmKind::P8])
            .cell(Cell::new("kmeans")) // same as the cross product's only cell
            .cell(Cell::new("kmeans").profile_sharing(true));
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert!(!cells[0].profile_sharing && cells[1].profile_sharing);
    }

    #[test]
    fn empty_spec_defaults_to_all_workloads_baseline() {
        let cells = SweepSpec::new().cells();
        assert_eq!(cells.len(), WORKLOAD_NAMES.len());
        assert!(cells
            .iter()
            .all(|c| c.htm == HtmKind::P8 && c.hint == HintMode::Off));
        assert!(cells.iter().all(|c| c.seed == 42));
    }

    #[test]
    fn cell_runs_like_the_equivalent_experiment() {
        let cell = Cell::new("ssca2").seed(7);
        let a = cell.run().unwrap();
        let b = Experiment::new("ssca2").seed(7).run().unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }
}
